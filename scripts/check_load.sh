#!/bin/sh
# check_load.sh — the load-smoke gate: boot a real rofs-server with the
# access log on, drive it with rofs-load in both loop modes, and have
# loadcheck assert the observability contract — client-observed counts
# match the server's Prometheus counter deltas, and every issued trace ID
# lands in exactly one access-log record. The second scenario constrains
# capacity so 503 shedding and Retry-After are exercised too.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "check_load: building rofs-server, rofs-load, loadcheck"
go build -o "$tmp/rofs-server" ./cmd/rofs-server
go build -o "$tmp/rofs-load" ./cmd/rofs-load
go build -o "$tmp/loadcheck" ./scripts/loadcheck

boot_server() { # boot_server NAME EXTRA-FLAGS...
	name=$1
	shift
	rm -f "$tmp/addr"
	"$tmp/rofs-server" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
		-access-log "$tmp/$name.access.jsonl" "$@" \
		2>"$tmp/$name.server.log" &
	server_pid=$!
	i=0
	while [ ! -s "$tmp/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "check_load: FAIL: $name server never wrote its address" >&2
			cat "$tmp/$name.server.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	ROFS_SERVER="http://$(cat "$tmp/addr")"
	export ROFS_SERVER
}

stop_server() { # drain so the final access records are flushed
	kill -TERM "$server_pid"
	wait "$server_pid" || {
		echo "check_load: FAIL: server exited non-zero after SIGTERM" >&2
		exit 1
	}
	server_pid=""
}

echo "check_load: closed loop (3 workers, 4s) against an unconstrained server"
boot_server closed -jobs 4
"$tmp/rofs-load" -mode closed -workers 3 -duration 4s -ramp 1s -seed 42 \
	-scrape 500ms -json "$tmp/closed.json" >"$tmp/closed.out" 2>&1 || {
	echo "check_load: FAIL: closed-loop rofs-load exited non-zero:" >&2
	cat "$tmp/closed.out" >&2
	exit 1
}
stop_server
grep -q 'accounting: .* -> agree' "$tmp/closed.out" || {
	echo "check_load: FAIL: closed-loop summary does not say agree:" >&2
	cat "$tmp/closed.out" >&2
	exit 1
}
"$tmp/loadcheck" "$tmp/closed.json" "$tmp/closed.access.jsonl" || {
	echo "check_load: FAIL: closed-loop report failed loadcheck" >&2
	exit 1
}

echo "check_load: open loop with heavy requests against jobs=1 queue=1 (503 shedding)"
boot_server open -jobs 1 -queue 1
"$tmp/rofs-load" -mode open -rps 40 -duration 4s -ramp 1s -seed 7 \
	-heavy-frac 0.5 -scrape 500ms -json "$tmp/open.json" >"$tmp/open.out" 2>&1 || {
	echo "check_load: FAIL: open-loop rofs-load exited non-zero:" >&2
	cat "$tmp/open.out" >&2
	exit 1
}
stop_server
"$tmp/loadcheck" "$tmp/open.json" "$tmp/open.access.jsonl" || {
	echo "check_load: FAIL: open-loop report failed loadcheck" >&2
	exit 1
}

# The constrained scenario must actually have shed load, or it tests
# nothing; the report records 503s under total.rejected.
rejected=$(sed -n 's/.*"client_rejected": \([0-9]*\).*/\1/p' "$tmp/open.json" | head -1)
if [ -z "$rejected" ] || [ "$rejected" -eq 0 ]; then
	echo "check_load: FAIL: open-loop scenario shed no load (rejected=$rejected)" >&2
	cat "$tmp/open.out" >&2
	exit 1
fi
echo "check_load: open loop shed $rejected requests with 503"

echo "check_load: ok"
