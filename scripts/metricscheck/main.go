// Command metricscheck validates a rofs-metrics JSON bundle read from
// stdin (or the files named as arguments): the schema tag, the required
// top-level sections, and the internal consistency of every histogram and
// timeline. CI pipes `rofsim -metrics -` through it so a malformed bundle
// fails the metrics-smoke step instead of surfacing in a consumer.
//
//	rofsim -workload TS -test app -metrics - | go run ./scripts/metricscheck
//	go run ./scripts/metricscheck bundle1.json bundle2.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// bundle mirrors the rofs-metrics/v1 layout (internal/metrics/export.go).
type bundle struct {
	Schema     string                 `json:"schema"`
	Labels     map[string]string      `json:"labels"`
	IntervalMS float64                `json:"interval_ms"`
	Samples    int64                  `json:"samples"`
	Counters   map[string]int64       `json:"counters"`
	Gauges     map[string]float64     `json:"gauges"`
	Histograms map[string]histSection `json:"histograms"`
	Timelines  map[string][]point     `json:"timelines"`
}

type histSection struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Total  int64     `json:"total"`
	Sum    float64   `json:"sum"`
}

type point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

func main() {
	if len(os.Args) < 2 {
		if err := check("<stdin>", os.Stdin); err != nil {
			fail(err)
		}
		fmt.Println("metricscheck: <stdin> ok")
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		err = check(path, f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("metricscheck: %s ok\n", path)
	}
}

func check(name string, r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b bundle
	if err := dec.Decode(&b); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if b.Schema != "rofs-metrics/v1" {
		return fmt.Errorf("%s: schema = %q, want rofs-metrics/v1", name, b.Schema)
	}
	// The encoder always emits every section, even when empty.
	if b.Labels == nil || b.Counters == nil || b.Gauges == nil ||
		b.Histograms == nil || b.Timelines == nil {
		return fmt.Errorf("%s: missing top-level section", name)
	}
	if b.IntervalMS < 0 || b.Samples < 0 {
		return fmt.Errorf("%s: negative interval/samples", name)
	}
	for metric, v := range b.Counters {
		if v < 0 {
			return fmt.Errorf("%s: counter %s is negative (%d)", name, metric, v)
		}
	}
	for metric, h := range b.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("%s: histogram %s has %d counts for %d bounds",
				name, metric, len(h.Counts), len(h.Bounds))
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("%s: histogram %s bounds not increasing", name, metric)
			}
		}
		var sum int64
		for _, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("%s: histogram %s has a negative count", name, metric)
			}
			sum += c
		}
		if sum != h.Total {
			return fmt.Errorf("%s: histogram %s counts sum to %d, total says %d",
				name, metric, sum, h.Total)
		}
	}
	for metric, pts := range b.Timelines {
		for i := 1; i < len(pts); i++ {
			if pts[i].T < pts[i-1].T {
				return fmt.Errorf("%s: timeline %s goes backwards at point %d", name, metric, i)
			}
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
	os.Exit(1)
}
