#!/bin/sh
# check_faults.sh — the fault-smoke gate: a seeded degraded-RAID5 scenario
# must fail a drive, retry transient errors, finish its hot-spare rebuild,
# and reproduce exactly on a second run; with faults off, the Table 3
# golden must stay byte-identical (the zero-cost-when-disabled contract).
set -eu
cd "$(dirname "$0")/.."

# Four drives: RAID-5 at bench scale needs the extra capacity (the 2-drive
# bench array leaves only one drive of data space). 4M rebuild chunks let
# the rebuild finish inside the 120 s simulated-time cap under load.
scenario="go run ./cmd/rofsim -workload TS -test app -disks 4 -layout raid5 \
	-fail-at 20000 -fail-drive 1 -transient 0.001 -rebuild -rebuild-chunk 4194304"

echo "check_faults: degraded raid5 scenario with rebuild"
out1=$($scenario 2>&1)
echo "$out1" | grep -q 'faults: .*1 drive failure' || {
	echo "check_faults: FAIL: no drive failure reported" >&2
	echo "$out1" >&2
	exit 1
}
echo "$out1" | grep -q 'rebuild completed:' || {
	echo "check_faults: FAIL: rebuild did not complete" >&2
	echo "$out1" >&2
	exit 1
}
echo "$out1" | grep -q 'degraded: ' || {
	echo "check_faults: FAIL: no degraded time reported" >&2
	echo "$out1" >&2
	exit 1
}

echo "check_faults: scenario reproduces under the same seed"
out2=$($scenario 2>&1)
if [ "$out1" != "$out2" ]; then
	echo "check_faults: FAIL: seeded fault runs diverged" >&2
	printf 'first:\n%s\nsecond:\n%s\n' "$out1" "$out2" >&2
	exit 1
fi

echo "check_faults: fault metrics land in the bundle"
go run ./cmd/rofsim -workload TS -test app -disks 4 -layout raid5 \
	-fail-at 20000 -fail-drive 1 -transient 0.001 -rebuild -rebuild-chunk 4194304 \
	-metrics - -metrics-format json 2>/dev/null |
	grep -q 'fault.drive_failures' || {
	echo "check_faults: FAIL: metrics bundle missing fault.drive_failures" >&2
	exit 1
}

echo "check_faults: faults off leaves Table 3 byte-identical"
go test ./internal/experiments/ -run TestTable3Golden -count=1 || {
	echo "check_faults: FAIL: Table 3 golden drifted" >&2
	exit 1
}

echo "check_faults: ok"
