#!/bin/sh
# check_service.sh — the service-smoke gate: boot a real rofs-server on a
# random port, drive it with rofs-client, and assert the served numbers
# match the simulator's golden bench-scale values. Covers submission,
# result rendering, the pool cache, the /metrics scrape, and graceful
# SIGTERM shutdown.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "check_service: building rofs-server and rofs-client"
go build -o "$tmp/rofs-server" ./cmd/rofs-server
go build -o "$tmp/rofs-client" ./cmd/rofs-client

"$tmp/rofs-server" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -jobs 2 \
	2>"$tmp/server.log" &
server_pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "check_service: FAIL: server never wrote its address" >&2
		cat "$tmp/server.log" >&2
		exit 1
	fi
	sleep 0.1
done
ROFS_SERVER="http://$(cat "$tmp/addr")"
export ROFS_SERVER
echo "check_service: server is up at $ROFS_SERVER"

echo "check_service: served buddy/TS/app matches the golden value"
out=$("$tmp/rofs-client" run -policy buddy -workload TS -test app 2>&1)
echo "$out" | grep -q '21\.168060' || {
	echo "check_service: FAIL: buddy/TS/app throughput is not 21.168060:" >&2
	echo "$out" >&2
	exit 1
}

echo "check_service: fixed-4K size parsing reaches the simulator"
out=$("$tmp/rofs-client" run -policy fixed -block 4K -workload TS -test app 2>&1)
echo "$out" | grep -q '16\.316041' || {
	echo "check_service: FAIL: fixed-4K/TS/app throughput is not 16.316041:" >&2
	echo "$out" >&2
	exit 1
}

echo "check_service: duplicate submission is served from the pool cache"
out=$("$tmp/rofs-client" run -policy buddy -workload TS -test app 2>&1)
echo "$out" | grep -q 'cached' || {
	echo "check_service: FAIL: identical resubmission was not cached:" >&2
	echo "$out" >&2
	exit 1
}

echo "check_service: /metrics exposes server counters and the pool mirror"
scrape=$(curl -fsS "$ROFS_SERVER/metrics")
for series in \
	'rofs_service_runs_admitted{component="rofs-server"} 3' \
	'rofs_service_runs_cached{component="rofs-server"} 1' \
	'rofs_pool_runs_submitted{component="rofs-server"} 3'; do
	echo "$scrape" | grep -qF "$series" || {
		echo "check_service: FAIL: /metrics missing '$series'" >&2
		echo "$scrape" >&2
		exit 1
	}
done
curl -fsS "$ROFS_SERVER/healthz" >/dev/null
curl -fsS "$ROFS_SERVER/readyz" >/dev/null

echo "check_service: SIGTERM drains and exits 0"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
	echo "check_service: FAIL: server exited $status after SIGTERM" >&2
	cat "$tmp/server.log" >&2
	exit 1
fi
grep -q 'draining' "$tmp/server.log" || {
	echo "check_service: FAIL: server log shows no drain" >&2
	cat "$tmp/server.log" >&2
	exit 1
}

echo "check_service: ok"
