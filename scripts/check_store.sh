#!/bin/sh
# check_store.sh — the store-smoke gate: prove the disk tier end to end.
# A server restarted over the same -store-dir must serve an identical
# resubmission from disk (disposition disk-hit) with a byte-identical
# result payload and metrics bundle; a kill -9 must not lose records that
# were already served; a checkpointed rofsim run killed mid-simulation
# and resumed must print output byte-identical to an uninterrupted run;
# and a repeated rofs-load mix across a restart must show disk hits while
# the accounting agreement still holds.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
sim_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	[ -n "$sim_pid" ] && kill -9 "$sim_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "check_store: building rofs-server, rofs-client, rofs-load, rofsim"
go build -o "$tmp/rofs-server" ./cmd/rofs-server
go build -o "$tmp/rofs-client" ./cmd/rofs-client
go build -o "$tmp/rofs-load" ./cmd/rofs-load
go build -o "$tmp/rofsim" ./cmd/rofsim

store="$tmp/store"

boot_server() { # boot_server NAME EXTRA-FLAGS...
	name=$1
	shift
	rm -f "$tmp/addr"
	"$tmp/rofs-server" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
		-store-dir "$store" "$@" 2>"$tmp/$name.server.log" &
	server_pid=$!
	i=0
	while [ ! -s "$tmp/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "check_store: FAIL: $name server never wrote its address" >&2
			cat "$tmp/$name.server.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	ROFS_SERVER="http://$(cat "$tmp/addr")"
	export ROFS_SERVER
}

stop_server() {
	kill -TERM "$server_pid"
	wait "$server_pid" || {
		echo "check_store: FAIL: server exited non-zero after SIGTERM" >&2
		exit 1
	}
	server_pid=""
}

# payload extracts the deterministic part of a run response: everything
# the simulator produced, none of the serving metadata.
payload() {
	jq -S '.result | {perf: .perf, stats: .stats, metrics: .metrics, wall: .wall_seconds}' "$1"
}

echo "check_store: cold server simulates and persists"
boot_server cold -jobs 2
"$tmp/rofs-client" run -policy buddy -workload TS -test app -json >"$tmp/first.json"
disp=$(jq -r '.result.disposition' "$tmp/first.json")
if [ "$disp" != "simulated" ]; then
	echo "check_store: FAIL: cold run disposition is '$disp', want simulated" >&2
	exit 1
fi
stop_server

echo "check_store: restarted server serves the identical bytes from disk"
boot_server warm -jobs 2
"$tmp/rofs-client" run -policy buddy -workload TS -test app -json >"$tmp/second.json"
disp=$(jq -r '.result.disposition' "$tmp/second.json")
if [ "$disp" != "disk-hit" ]; then
	echo "check_store: FAIL: warm-restart disposition is '$disp', want disk-hit" >&2
	cat "$tmp/warm.server.log" >&2
	exit 1
fi
payload "$tmp/first.json" >"$tmp/first.payload"
payload "$tmp/second.json" >"$tmp/second.payload"
diff -u "$tmp/first.payload" "$tmp/second.payload" || {
	echo "check_store: FAIL: disk-served payload diverged from the original run" >&2
	exit 1
}

echo "check_store: repeat on the warm server is a memory hit"
"$tmp/rofs-client" run -policy buddy -workload TS -test app -json >"$tmp/third.json"
disp=$(jq -r '.result.disposition' "$tmp/third.json")
if [ "$disp" != "memory-hit" ]; then
	echo "check_store: FAIL: repeat disposition is '$disp', want memory-hit" >&2
	exit 1
fi

echo "check_store: /metrics exposes the disk tier"
scrape=$(curl -fsS "$ROFS_SERVER/metrics")
for series in rofs_store_records rofs_pool_runs_disk_hit rofs_store_hits; do
	echo "$scrape" | grep -q "^$series" || {
		echo "check_store: FAIL: /metrics missing $series" >&2
		exit 1
	}
done

echo "check_store: kill -9 loses nothing that was already served"
"$tmp/rofs-client" run -policy fixed -block 4K -workload TS -test app -json >/dev/null
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
boot_server recover -jobs 2
"$tmp/rofs-client" run -policy fixed -block 4K -workload TS -test app -json >"$tmp/recover.json"
disp=$(jq -r '.result.disposition' "$tmp/recover.json")
if [ "$disp" != "disk-hit" ]; then
	echo "check_store: FAIL: post-kill disposition is '$disp', want disk-hit" >&2
	cat "$tmp/recover.server.log" >&2
	exit 1
fi
stop_server

echo "check_store: rofsim resume after a mid-run kill matches the uninterrupted golden"
sim_args="-policy buddy -workload TS -test app -max-sim 3000000 -checkpoint-every 500"
# shellcheck disable=SC2086 # sim_args is a flat flag list
"$tmp/rofsim" $sim_args -checkpoint "$tmp/ckpt-golden" >"$tmp/golden.out" 2>/dev/null
attempt=0
resumed=""
while [ -z "$resumed" ]; do
	attempt=$((attempt + 1))
	if [ "$attempt" -gt 3 ]; then
		echo "check_store: FAIL: could not interrupt rofsim mid-run in 3 attempts" >&2
		exit 1
	fi
	ckdir="$tmp/ckpt-$attempt"
	# shellcheck disable=SC2086
	"$tmp/rofsim" $sim_args -checkpoint "$ckdir" >/dev/null 2>&1 &
	sim_pid=$!
	# Kill as soon as the first checkpoint lands; a completed run clears
	# its file, so a surviving one proves the kill was mid-simulation.
	while [ -z "$(ls "$ckdir" 2>/dev/null)" ] && kill -0 "$sim_pid" 2>/dev/null; do
		sleep 0.05
	done
	sleep 0.2
	kill -9 "$sim_pid" 2>/dev/null || true
	wait "$sim_pid" 2>/dev/null || true
	sim_pid=""
	if [ -n "$(ls "$ckdir" 2>/dev/null)" ]; then
		# shellcheck disable=SC2086
		"$tmp/rofsim" $sim_args -checkpoint "$ckdir" -resume \
			>"$tmp/resumed.out" 2>"$tmp/resumed.err"
		grep -q 'resuming from checkpoint' "$tmp/resumed.err" && resumed=yes
	fi
done
diff -u "$tmp/golden.out" "$tmp/resumed.out" || {
	echo "check_store: FAIL: resumed run diverged from the uninterrupted golden" >&2
	cat "$tmp/resumed.err" >&2
	exit 1
}
echo "check_store: resumed on attempt $attempt: $(grep resuming "$tmp/resumed.err")"

echo "check_store: repeated load mix across a restart is served from disk"
rm -rf "$store"
boot_server load1 -jobs 4
"$tmp/rofs-load" -mode closed -workers 3 -duration 3s -seed 99 \
	-json "$tmp/load1.json" >/dev/null 2>&1
stop_server
boot_server load2 -jobs 4
"$tmp/rofs-load" -mode closed -workers 3 -duration 3s -seed 99 \
	-json "$tmp/load2.json" >"$tmp/load2.out" 2>&1
stop_server
hits=$(jq -r '.total.disk_hits' "$tmp/load2.json")
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
	echo "check_store: FAIL: second load run saw no disk hits" >&2
	cat "$tmp/load2.out" >&2
	exit 1
fi
agree=$(jq -r '.agreement.ok' "$tmp/load2.json")
if [ "$agree" != "true" ]; then
	echo "check_store: FAIL: accounting disagreement under the repeated mix" >&2
	jq '.agreement' "$tmp/load2.json" >&2
	exit 1
fi
echo "check_store: second load run served $hits requests from disk, accounting agrees"

echo "check_store: ok"
