#!/bin/sh
# check_metrics.sh — the metrics-smoke gate: run one short simulation per
# exporter format and validate the JSON bundle's schema with
# scripts/metricscheck. Exercises the -metrics plumbing end to end without
# depending on golden values.
set -eu
cd "$(dirname "$0")/.."

run="go run ./cmd/rofsim -workload TS -test app -max-sim 30000"

echo "check_metrics: json bundle + schema check"
$run -metrics - -metrics-format json >/dev/null 2>&1 || {
	echo "check_metrics: FAIL: rofsim -metrics - exited non-zero" >&2
	exit 1
}
$run -metrics - -metrics-format json 2>/dev/null | go run ./scripts/metricscheck

echo "check_metrics: csv bundle parses"
csv=$($run -metrics - -metrics-format csv 2>/dev/null)
echo "$csv" | head -1 | grep -q '^kind,name,time_ms,key,value$' || {
	echo "check_metrics: FAIL: bad CSV header" >&2
	exit 1
}
echo "$csv" | grep -q '^counter,disk.requests,' || {
	echo "check_metrics: FAIL: CSV missing disk.requests" >&2
	exit 1
}

echo "check_metrics: prometheus bundle parses"
prom=$($run -metrics - -metrics-format prom 2>/dev/null)
echo "$prom" | grep -q '^# TYPE rofs_disk_requests counter$' || {
	echo "check_metrics: FAIL: Prometheus output missing rofs_disk_requests" >&2
	exit 1
}
echo "$prom" | grep -q '^rofs_disk_request_latency_ms_count' || {
	echo "check_metrics: FAIL: Prometheus output missing latency histogram" >&2
	exit 1
}

echo "check_metrics: ok"
