// Command loadcheck validates a rofs-load/v1 report and cross-checks it
// against the server's JSON access log: the schema tag, internal count
// consistency, client/server accounting agreement, trace-ID uniqueness,
// and — the tracing contract end to end — that every request the load
// generator issued appears in exactly one access-log record under its
// trace ID. CI runs it from scripts/check_load.sh.
//
//	loadcheck report.json                 # report-only checks
//	loadcheck report.json access.jsonl    # plus the access-log cross-check
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"rofs/internal/obs"
)

// loadReport mirrors the rofs-load/v1 fields the checks consume.
type loadReport struct {
	Schema  string `json:"schema"`
	Mode    string `json:"mode"`
	Classes map[string]struct {
		Count int64 `json:"count"`
	} `json:"classes"`
	Total struct {
		Count    int64 `json:"count"`
		Done     int64 `json:"done"`
		Rejected int64 `json:"rejected"`
		Failed   int64 `json:"failed"`
		Canceled int64 `json:"canceled"`
		Errors   int64 `json:"errors"`
	} `json:"total"`
	Agreement struct {
		ClientCompleted      int64   `json:"client_completed"`
		ClientRejected       int64   `json:"client_rejected"`
		ClientErrors         int64   `json:"client_errors"`
		ServerCompletedDelta float64 `json:"server_completed_delta"`
		ServerRejectedDelta  float64 `json:"server_rejected_delta"`
		OK                   bool    `json:"ok"`
	} `json:"agreement"`
	Requests []struct {
		Trace  string `json:"trace"`
		Status string `json:"status"`
	} `json:"requests"`
}

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fail(fmt.Errorf("usage: loadcheck REPORT.json [ACCESS.jsonl]"))
	}
	rep, err := loadRep(os.Args[1])
	if err != nil {
		fail(err)
	}

	if rep.Schema != "rofs-load/v1" {
		fail(fmt.Errorf("schema = %q, want rofs-load/v1", rep.Schema))
	}
	if !rep.Agreement.OK {
		fail(fmt.Errorf("accounting disagrees: client %d completed + %d rejected (%d errors) vs server deltas %+.0f/%+.0f",
			rep.Agreement.ClientCompleted, rep.Agreement.ClientRejected, rep.Agreement.ClientErrors,
			rep.Agreement.ServerCompletedDelta, rep.Agreement.ServerRejectedDelta))
	}
	if rep.Total.Count == 0 {
		fail(fmt.Errorf("report has zero requests"))
	}
	if got := int64(len(rep.Requests)); got != rep.Total.Count {
		fail(fmt.Errorf("requests array has %d entries, total.count says %d", got, rep.Total.Count))
	}
	var classSum int64
	for _, cs := range rep.Classes {
		classSum += cs.Count
	}
	if classSum != rep.Total.Count {
		fail(fmt.Errorf("class counts sum to %d, total.count says %d", classSum, rep.Total.Count))
	}
	if sum := rep.Total.Done + rep.Total.Rejected + rep.Total.Failed +
		rep.Total.Canceled + rep.Total.Errors; sum != rep.Total.Count {
		fail(fmt.Errorf("dispositions sum to %d, total.count says %d", sum, rep.Total.Count))
	}

	// Every request carries a well-formed trace, no trace twice.
	traces := make(map[string]bool, len(rep.Requests))
	for i, req := range rep.Requests {
		if !obs.ValidTraceID(req.Trace) {
			fail(fmt.Errorf("request %d: trace %q is not a valid trace ID", i, req.Trace))
		}
		if traces[req.Trace] {
			fail(fmt.Errorf("trace %s issued twice", req.Trace))
		}
		traces[req.Trace] = true
	}

	if len(os.Args) == 3 {
		if err := checkAccessLog(os.Args[2], traces); err != nil {
			fail(err)
		}
		fmt.Printf("loadcheck: %s ok (%d requests, accounting agrees, every trace logged exactly once)\n",
			os.Args[1], rep.Total.Count)
		return
	}
	fmt.Printf("loadcheck: %s ok (%d requests, accounting agrees, traces unique)\n",
		os.Args[1], rep.Total.Count)
}

// checkAccessLog asserts each issued trace appears in exactly one access
// record. The log may hold more records than the report (health checks,
// metrics scrapes, status polls) — those are ignored.
func checkAccessLog(path string, traces map[string]bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	seen := make(map[string]int, len(traces))
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec struct {
			Msg   string `json:"msg"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("%s:%d: not a JSON access record: %w", path, line, err)
		}
		if rec.Msg != "access" {
			return fmt.Errorf("%s:%d: msg = %q, want access", path, line, rec.Msg)
		}
		if !obs.ValidTraceID(rec.Trace) {
			return fmt.Errorf("%s:%d: trace %q is not a valid trace ID", path, line, rec.Trace)
		}
		if traces[rec.Trace] {
			seen[rec.Trace]++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for trace := range traces {
		switch n := seen[trace]; n {
		case 1:
		case 0:
			return fmt.Errorf("trace %s has no access-log record", trace)
		default:
			return fmt.Errorf("trace %s has %d access-log records, want exactly 1", trace, n)
		}
	}
	return nil
}

func loadRep(path string) (*loadReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "loadcheck: FAIL: %v\n", err)
	os.Exit(1)
}
