#!/bin/sh
# check_cluster.sh — the cluster-smoke gate, three contracts:
#
#   1. delegation: an N=1 closed-loop cluster run is byte-identical to the
#      plain run — report and rofs-metrics/v1 bundle;
#   2. determinism: a routed N=4 open-loop fleet reproduces exactly under
#      the same seed;
#   3. admission: past the configured capacity the fleet sheds load — the
#      reject rate is nonzero and arrivals = admitted + rejected.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "check_cluster: N=1 cluster run matches the plain run byte for byte"
# The human report goes to stdout; stderr carries the bundle-path note,
# which necessarily differs between the two runs.
go run ./cmd/rofsim -workload TP -test app -metrics "$tmp/plain.json" \
	>"$tmp/plain.txt" 2>/dev/null
go run ./cmd/rofsim -workload TP -test app -metrics "$tmp/fleet1.json" \
	-instances 1 >"$tmp/fleet1.txt" 2>/dev/null
cmp "$tmp/plain.txt" "$tmp/fleet1.txt" || {
	echo "check_cluster: FAIL: N=1 cluster report deviates from the plain run" >&2
	diff "$tmp/plain.txt" "$tmp/fleet1.txt" >&2 || true
	exit 1
}
cmp "$tmp/plain.json" "$tmp/fleet1.json" || {
	echo "check_cluster: FAIL: N=1 cluster metrics bundle deviates from the plain run" >&2
	exit 1
}

echo "check_cluster: routed N=4 open-loop fleet reproduces under the same seed"
fleet="go run ./cmd/rofsim -workload TP -test app -instances 4 -routing least \
	-snapshot-ms 250 -admission token -token-capacity 32 -token-refill 300 \
	-rate 400 -max-sim 30000"
out1=$($fleet 2>&1)
out2=$($fleet 2>&1)
if [ "$out1" != "$out2" ]; then
	echo "check_cluster: FAIL: seeded fleet runs diverged" >&2
	printf 'first:\n%s\nsecond:\n%s\n' "$out1" "$out2" >&2
	exit 1
fi
echo "$out1" | grep -q 'cluster: *4 instances' || {
	echo "check_cluster: FAIL: no cluster report in the fleet run" >&2
	echo "$out1" >&2
	exit 1
}

echo "check_cluster: overloaded fleet sheds load through admission control"
out=$(go run ./cmd/rofsim -workload TP -test app -instances 2 -admission queue \
	-queue-cap 8 -rate 2000 -max-sim 10000 2>&1)
rejected=$(echo "$out" | sed -n 's/.* \([0-9][0-9]*\) rejected .*/\1/p')
if [ -z "$rejected" ] || [ "$rejected" -eq 0 ]; then
	echo "check_cluster: FAIL: overloaded bounded queue rejected nothing" >&2
	echo "$out" >&2
	exit 1
fi
arrivals=$(echo "$out" | sed -n 's/.* \([0-9][0-9]*\) arrivals.*/\1/p')
admitted=$(echo "$out" | sed -n 's/.* \([0-9][0-9]*\) admitted.*/\1/p')
if [ "$((admitted + rejected))" -ne "$arrivals" ]; then
	echo "check_cluster: FAIL: admitted $admitted + rejected $rejected != arrivals $arrivals" >&2
	exit 1
fi

echo "check_cluster: all cluster-smoke checks passed"
