#!/bin/sh
# check_aging.sh — the aging-smoke gate, three contracts:
#
#   1. trace import end to end: a trace file replays over HTTP (loaded
#      client-side, shipped inline), and a request still carrying a
#      trace_file path is rejected with 400 — servers do not read
#      client-local filesystems;
#   2. determinism: the multi-day aging table reproduces byte for byte
#      under the same seed;
#   3. compaction: an armed run's metrics bundle shows nonzero background
#      merge I/O — the overlay actually ran through the drive queues.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "check_aging: building rofs-server, rofs-client, rofsim, rofs-tables"
go build -o "$tmp/rofs-server" ./cmd/rofs-server
go build -o "$tmp/rofs-client" ./cmd/rofs-client
go build -o "$tmp/rofsim" ./cmd/rofsim
go build -o "$tmp/rofs-tables" ./cmd/rofs-tables

"$tmp/rofs-server" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -jobs 2 \
	2>"$tmp/server.log" &
server_pid=$!
i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "check_aging: FAIL: server never wrote its address" >&2
		cat "$tmp/server.log" >&2
		exit 1
	fi
	sleep 0.1
done
ROFS_SERVER="http://$(cat "$tmp/addr")"
export ROFS_SERVER
echo "check_aging: server is up at $ROFS_SERVER"

echo "check_aging: a trace file replays over HTTP (inlined client-side)"
cat >"$tmp/ops.trace" <<'EOF'
# mixed-grammar trace: simple lines and blkparse queue records
0 read
100 write - 3
8,0 1 1 0.250000000 42 Q R 128 + 8 [smoke]
400 extend
8,0 1 2 0.500000000 42 Q W 256 + 16 [smoke]
1000 dealloc - 7
EOF
out=$("$tmp/rofs-client" run -workload TP -test app -arrival-trace "$tmp/ops.trace" 2>&1)
echo "$out" | grep -qi 'ops\|throughput' || {
	echo "check_aging: FAIL: traced run over HTTP produced no result:" >&2
	echo "$out" >&2
	exit 1
}

echo "check_aging: a trace_file path in the request body is a 400"
code=$(curl -s -o "$tmp/reject.json" -w '%{http_code}' -X POST \
	-H 'Content-Type: application/json' \
	-d '{"policy":"buddy","workload":"TP","test":"app","arrivals":{"trace_file":"/tmp/nope.trace"}}' \
	"$ROFS_SERVER/v1/runs")
if [ "$code" != "400" ]; then
	echo "check_aging: FAIL: trace_file submission returned $code, want 400" >&2
	cat "$tmp/reject.json" >&2
	exit 1
fi
grep -q 'trace' "$tmp/reject.json" || {
	echo "check_aging: FAIL: 400 body does not explain the trace_file rejection" >&2
	cat "$tmp/reject.json" >&2
	exit 1
}

echo "check_aging: the aging test runs over HTTP"
out=$("$tmp/rofs-client" run -policy buddy -workload TS -test aging 2>&1)
echo "$out" | grep -qi 'free frags\|aging' || {
	echo "check_aging: FAIL: aging run over HTTP produced no timeline:" >&2
	echo "$out" >&2
	exit 1
}

echo "check_aging: the multi-day aging table reproduces byte for byte"
# The wall-clock footer ("[aging in N.Ns]") necessarily differs between
# runs; everything else — every table cell — must not.
"$tmp/rofs-tables" -exp aging -scale bench 2>/dev/null |
	grep -v '^ *\[aging in ' >"$tmp/aging1.txt"
"$tmp/rofs-tables" -exp aging -scale bench 2>/dev/null |
	grep -v '^ *\[aging in ' >"$tmp/aging2.txt"
cmp "$tmp/aging1.txt" "$tmp/aging2.txt" || {
	echo "check_aging: FAIL: seeded aging tables diverged" >&2
	diff "$tmp/aging1.txt" "$tmp/aging2.txt" >&2 || true
	exit 1
}
grep -q 'free-space decay' "$tmp/aging1.txt" || {
	echo "check_aging: FAIL: no aging table in the output" >&2
	cat "$tmp/aging1.txt" >&2
	exit 1
}

echo "check_aging: an armed compaction run shows nonzero merge I/O"
"$tmp/rofsim" -workload TP -test app -compact tiered -max-sim 60000 \
	-metrics "$tmp/compact.json" >"$tmp/compact.txt" 2>/dev/null
merged=$(sed -n 's/.*"compact\.merge_write_bytes": *\([0-9][0-9]*\).*/\1/p' "$tmp/compact.json")
if [ -z "$merged" ] || [ "$merged" -eq 0 ]; then
	echo "check_aging: FAIL: compact.merge_write_bytes missing or zero in the bundle" >&2
	grep -o '"compact[^,}]*' "$tmp/compact.json" >&2 || cat "$tmp/compact.json" >&2
	exit 1
fi
grep -q 'write amp' "$tmp/compact.txt" || {
	echo "check_aging: FAIL: no compaction report in the rofsim output" >&2
	cat "$tmp/compact.txt" >&2
	exit 1
}

echo "check_aging: all aging-smoke checks passed"
