#!/bin/sh
# check_parallel.sh — the parallel-fleet gate, three contracts:
#
#   1. identity: a routed N=4 open-loop fleet with -par 4 is byte-identical
#      to the serial -par 1 run — human report and rofs-metrics/v1 bundle;
#   2. reproduction: the parallel executor reproduces exactly under the
#      same seed (worker scheduling never leaks into results);
#   3. speedup sanity (hosts with >= 8 cores only): a par=16 N=16 fleet
#      must beat the serial executor by at least 2x wall clock — a
#      deliberately generous floor for a path that should scale near-
#      linearly on independent instances. Skipped on narrow hosts, where
#      there is nothing to fan out to; the tracked BENCH_*.json records
#      per-cell gomaxprocs so reviewers can see what a given artifact
#      could and could not demonstrate.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/rofsim" ./cmd/rofsim

# The golden fleet configuration (cluster determinism golden + check_cluster).
fleet="-workload TP -test app -instances 4 -routing least -snapshot-ms 250 \
	-admission token -token-capacity 32 -token-refill 300 \
	-rate 400 -max-sim 30000"

echo "check_parallel: -par 4 fleet matches -par 1 byte for byte"
# stderr carries the bundle-path note, which necessarily differs.
"$tmp/rofsim" $fleet -par 1 -metrics "$tmp/serial.json" >"$tmp/serial.txt" 2>/dev/null
"$tmp/rofsim" $fleet -par 4 -metrics "$tmp/par.json" >"$tmp/par.txt" 2>/dev/null
cmp "$tmp/serial.txt" "$tmp/par.txt" || {
	echo "check_parallel: FAIL: -par 4 report deviates from -par 1" >&2
	diff "$tmp/serial.txt" "$tmp/par.txt" >&2 || true
	exit 1
}
cmp "$tmp/serial.json" "$tmp/par.json" || {
	echo "check_parallel: FAIL: -par 4 metrics bundle deviates from -par 1" >&2
	exit 1
}

echo "check_parallel: parallel fleet reproduces under the same seed"
out1=$("$tmp/rofsim" $fleet -par 4 2>&1)
out2=$("$tmp/rofsim" $fleet -par 4 2>&1)
if [ "$out1" != "$out2" ]; then
	echo "check_parallel: FAIL: seeded parallel runs diverged" >&2
	printf 'first:\n%s\nsecond:\n%s\n' "$out1" "$out2" >&2
	exit 1
fi

cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 8 ]; then
	echo "check_parallel: speedup sanity on $cores cores"
	big="-workload TP -test app -instances 16 -rate 1600 -max-sim 120000"
	t0=$(date +%s%N)
	"$tmp/rofsim" $big -par 1 >/dev/null 2>&1
	t1=$(date +%s%N)
	serial_ns=$((t1 - t0))
	t0=$(date +%s%N)
	"$tmp/rofsim" $big -par 16 >/dev/null 2>&1
	t1=$(date +%s%N)
	par_ns=$((t1 - t0))
	echo "check_parallel: serial ${serial_ns}ns, par=16 ${par_ns}ns"
	if [ $((par_ns * 2)) -gt "$serial_ns" ]; then
		echo "check_parallel: FAIL: par=16 under 2x faster than serial on $cores cores" >&2
		exit 1
	fi
else
	echo "check_parallel: skipping speedup sanity ($cores cores, need >= 8)"
fi

echo "check_parallel: all parallel-fleet checks passed"
