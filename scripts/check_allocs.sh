#!/bin/sh
# check_allocs.sh — fail when a pinned benchmark allocates more per op
# than its budget in bench/allocs_budget.txt allows. The budgets are
# allocs/op as reported by -benchmem; the engine benchmarks are budgeted
# at zero, which is what keeps the simulator hot loop allocation-free.
set -eu
cd "$(dirname "$0")/.."

budget=bench/allocs_budget.txt
out=$(go test -run '^$' -bench 'BenchmarkEngine(Throughput|SelfFire|Depth256)$' \
	-benchmem -benchtime 0.5s . ./internal/sim)
echo "$out"

fail=0
while read -r name max; do
	case "$name" in '' | '#'*) continue ;; esac
	# Benchmark lines: name [-GOMAXPROCS]  N  x ns/op  y B/op  z allocs/op
	got=$(echo "$out" | awk -v n="$name" \
		'$1 ~ ("^" n "(-[0-9]+)?$") && $NF == "allocs/op" {print $(NF-1)}' |
		sort -nr | head -1)
	if [ -z "$got" ]; then
		echo "check_allocs: benchmark $name did not run" >&2
		fail=1
		continue
	fi
	if [ "$got" -gt "$max" ]; then
		echo "check_allocs: FAIL $name: $got allocs/op exceeds budget $max" >&2
		fail=1
	else
		echo "check_allocs: ok   $name: $got allocs/op (budget $max)"
	fi
done <"$budget"

# The parallel fleet executor's budget is differential rather than a
# benchmark line: a par=4 run must not allocate per event over the
# byte-identical serial schedule (the model's own allocations cancel).
# The test carries the threshold; see internal/cluster/alloc_test.go.
echo "check_allocs: parallel fleet executor overhead"
if go test -run '^TestParallelPathAllocOverhead$' ./internal/cluster; then
	echo "check_allocs: ok   parallel executor adds ~0 allocs/event"
else
	echo "check_allocs: FAIL parallel executor allocates over serial" >&2
	fail=1
fi
exit $fail
