package main

import (
	"strings"
	"testing"

	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/fault"
	"rofs/internal/workload"
)

// noCluster is the base for non-cluster sweeps: no fleet, closed loop.
var noCluster = cluster.Config{}

func TestParseValuesAcceptsFractionsAndNames(t *testing.T) {
	vals, err := parseValues("1, 1.5 ,2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "1.5", "2"}
	if len(vals) != len(want) {
		t.Fatalf("got %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("value %d = %q, want %q", i, vals[i], want[i])
		}
	}
	// Tokens stay strings, so name-valued axes parse too.
	names, err := parseValues("rr,least,affinity")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[1] != "least" {
		t.Errorf("name-valued tokens mangled: %v", names)
	}
	if _, err := parseValues(" ,, "); err == nil {
		t.Error("empty list accepted")
	}
}

func TestBuildSpecsGrowFraction(t *testing.T) {
	sc := experiments.BenchScale()
	specs, err := buildSpecs(sc, "grow", "TS", core.Allocation,
		[]string{"1", "1.5", "2"}, fault.Scenario{}, noCluster, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	if got := specs[1].Policy.Name(); !strings.Contains(got, "g1.5") {
		t.Errorf("fractional grow factor lost: policy %q", got)
	}
	if specs[0].Key() == specs[1].Key() {
		t.Error("different grow factors share a key")
	}
}

func TestBuildSpecsRejectsFractionalIntParams(t *testing.T) {
	sc := experiments.BenchScale()
	for _, param := range []string{"seed", "users", "stripe", "disks", "sizes", "instances"} {
		if _, err := buildSpecs(sc, param, "TP", core.Application,
			[]string{"1.5"}, fault.Scenario{}, noCluster, nil); err == nil {
			t.Errorf("parameter %q accepted a fractional value", param)
		}
	}
	// Integer-valued tokens convert cleanly.
	specs, err := buildSpecs(sc, "seed", "TP", core.Application,
		[]string{"7"}, fault.Scenario{}, noCluster, nil)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Seed != 7 {
		t.Errorf("seed = %d, want 7", specs[0].Seed)
	}
	// Numeric parameters reject garbage tokens.
	if _, err := buildSpecs(sc, "seed", "TP", core.Application,
		[]string{"x"}, fault.Scenario{}, noCluster, nil); err == nil {
		t.Error("garbage token accepted for a numeric parameter")
	}
}

func TestBuildSpecsRebuildPauseSweep(t *testing.T) {
	sc := experiments.BenchScale()
	// rebuild-pause without a rebuild scenario is an error.
	if _, err := buildSpecs(sc, "rebuild-pause", "TS", core.Application,
		[]string{"0", "50"}, fault.Scenario{}, noCluster, nil); err == nil {
		t.Error("rebuild-pause sweep accepted without a fault scenario")
	}
	faults := fault.Scenario{FailAtMS: 1000, Rebuild: true}
	specs, err := buildSpecs(sc, "rebuild-pause", "TS", core.Application,
		[]string{"0", "50"}, faults, noCluster, nil)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Faults.RebuildPauseMS != 0 || specs[1].Faults.RebuildPauseMS != 50 {
		t.Errorf("pause not applied: %g, %g", specs[0].Faults.RebuildPauseMS, specs[1].Faults.RebuildPauseMS)
	}
	if specs[0].Key() == specs[1].Key() {
		t.Error("different rebuild pauses share a key")
	}
}

func TestBuildSpecsAttachScenario(t *testing.T) {
	sc := experiments.BenchScale()
	faults := fault.Scenario{FailAtMS: 2000, TransientProb: 0.01}
	specs, err := buildSpecs(sc, "seed", "TP", core.Application,
		[]string{"1", "2"}, faults, noCluster, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		if sp.Faults != faults {
			t.Errorf("spec %d lost the fault scenario: %+v", i, sp.Faults)
		}
	}
}

func TestBuildSpecsVariesOnlyTheParameter(t *testing.T) {
	sc := experiments.BenchScale()
	specs, err := buildSpecs(sc, "users", "TP", core.Application,
		[]string{"8", "16"}, fault.Scenario{}, noCluster, nil)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Workload.Types[0].Users != 8 || specs[1].Workload.Types[0].Users != 16 {
		t.Errorf("users not applied: %d, %d",
			specs[0].Workload.Types[0].Users, specs[1].Workload.Types[0].Users)
	}
	if specs[0].Seed != specs[1].Seed {
		t.Error("seed drifted across points")
	}
}

func TestBuildSpecsInstancesSweep(t *testing.T) {
	sc := experiments.BenchScale()
	arr := &workload.Arrivals{RatePerSec: 400}
	specs, err := buildSpecs(sc, "instances", "TP", core.Application,
		[]string{"1", "2", "4"}, fault.Scenario{}, noCluster, arr)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 4} {
		if specs[i].Cluster.Instances != want {
			t.Errorf("point %d: instances = %d, want %d", i, specs[i].Cluster.Instances, want)
		}
		if specs[i].Workload.Arrivals == nil || specs[i].Workload.Arrivals.RatePerSec != 400 {
			t.Errorf("point %d lost the arrival process: %+v", i, specs[i].Workload.Arrivals)
		}
	}
	if specs[0].Key() == specs[2].Key() {
		t.Error("different fleet sizes share a key")
	}
	// The cluster axes are app-test only.
	if _, err := buildSpecs(sc, "instances", "TP", core.Sequential,
		[]string{"2"}, fault.Scenario{}, noCluster, nil); err == nil {
		t.Error("instances sweep accepted outside the app test")
	}
}

func TestBuildSpecsRoutingAndAdmissionSweeps(t *testing.T) {
	sc := experiments.BenchScale()
	base := cluster.Config{Instances: 4, TokenCapacity: 32, TokenRefillPerSec: 300, QueueCap: 64}
	arr := &workload.Arrivals{RatePerSec: 400}
	specs, err := buildSpecs(sc, "routing", "TP", core.Application,
		[]string{"rr", "least", "affinity"}, fault.Scenario{}, base, arr)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"rr", "least", "affinity"} {
		if specs[i].Cluster.Routing != want {
			t.Errorf("point %d: routing = %q, want %q", i, specs[i].Cluster.Routing, want)
		}
	}
	// Routing needs a fleet to route across.
	if _, err := buildSpecs(sc, "routing", "TP", core.Application,
		[]string{"rr"}, fault.Scenario{}, noCluster, arr); err == nil {
		t.Error("routing sweep accepted without -instances")
	}
	// Unknown policy names fail per point via cluster validation.
	if _, err := buildSpecs(sc, "routing", "TP", core.Application,
		[]string{"random"}, fault.Scenario{}, base, arr); err == nil {
		t.Error("unknown routing policy accepted")
	}

	specs, err = buildSpecs(sc, "admission", "TP", core.Application,
		[]string{"none", "token", "queue"}, fault.Scenario{}, base, arr)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"", "token", "queue"} {
		if specs[i].Cluster.Admission != want {
			t.Errorf("point %d: admission = %q, want %q", i, specs[i].Cluster.Admission, want)
		}
	}
}

func TestBuildSpecsRateSweep(t *testing.T) {
	sc := experiments.BenchScale()
	base := cluster.Config{Instances: 2}
	arr := &workload.Arrivals{RatePerSec: 100, Clients: 64}
	specs, err := buildSpecs(sc, "rate", "TP", core.Application,
		[]string{"200", "400"}, fault.Scenario{}, base, arr)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{200, 400} {
		a := specs[i].Workload.Arrivals
		if a == nil || a.RatePerSec != want {
			t.Errorf("point %d: arrivals = %+v, want rate %g", i, a, want)
		}
		if a != nil && a.Clients != 64 {
			t.Errorf("point %d dropped the client population: %+v", i, a)
		}
	}
	if specs[0].Key() == specs[1].Key() {
		t.Error("different arrival rates share a key")
	}
}
