package main

import (
	"strings"
	"testing"

	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/fault"
)

func TestParseValuesAcceptsFractions(t *testing.T) {
	vals, err := parseValues("1, 1.5 ,2")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2}
	if len(vals) != len(want) {
		t.Fatalf("got %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("value %d = %g, want %g", i, vals[i], want[i])
		}
	}
	if _, err := parseValues("1,x"); err == nil {
		t.Error("garbage value accepted")
	}
}

func TestBuildSpecsGrowFraction(t *testing.T) {
	sc := experiments.BenchScale()
	specs, err := buildSpecs(sc, "grow", "TS", core.Allocation, []float64{1, 1.5, 2}, fault.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	if got := specs[1].Policy.Name(); !strings.Contains(got, "g1.5") {
		t.Errorf("fractional grow factor lost: policy %q", got)
	}
	if specs[0].Key() == specs[1].Key() {
		t.Error("different grow factors share a key")
	}
}

func TestBuildSpecsRejectsFractionalIntParams(t *testing.T) {
	sc := experiments.BenchScale()
	for _, param := range []string{"seed", "users", "stripe", "disks", "sizes"} {
		if _, err := buildSpecs(sc, param, "TP", core.Application, []float64{1.5}, fault.Scenario{}); err == nil {
			t.Errorf("parameter %q accepted a fractional value", param)
		}
	}
	// Integer-valued floats convert cleanly.
	specs, err := buildSpecs(sc, "seed", "TP", core.Application, []float64{7}, fault.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Seed != 7 {
		t.Errorf("seed = %d, want 7", specs[0].Seed)
	}
}

func TestBuildSpecsRebuildPauseSweep(t *testing.T) {
	sc := experiments.BenchScale()
	// rebuild-pause without a rebuild scenario is an error.
	if _, err := buildSpecs(sc, "rebuild-pause", "TS", core.Application, []float64{0, 50}, fault.Scenario{}); err == nil {
		t.Error("rebuild-pause sweep accepted without a fault scenario")
	}
	faults := fault.Scenario{FailAtMS: 1000, Rebuild: true}
	specs, err := buildSpecs(sc, "rebuild-pause", "TS", core.Application, []float64{0, 50}, faults)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Faults.RebuildPauseMS != 0 || specs[1].Faults.RebuildPauseMS != 50 {
		t.Errorf("pause not applied: %g, %g", specs[0].Faults.RebuildPauseMS, specs[1].Faults.RebuildPauseMS)
	}
	if specs[0].Key() == specs[1].Key() {
		t.Error("different rebuild pauses share a key")
	}
}

func TestBuildSpecsAttachScenario(t *testing.T) {
	sc := experiments.BenchScale()
	faults := fault.Scenario{FailAtMS: 2000, TransientProb: 0.01}
	specs, err := buildSpecs(sc, "seed", "TP", core.Application, []float64{1, 2}, faults)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		if sp.Faults != faults {
			t.Errorf("spec %d lost the fault scenario: %+v", i, sp.Faults)
		}
	}
}

func TestBuildSpecsVariesOnlyTheParameter(t *testing.T) {
	sc := experiments.BenchScale()
	specs, err := buildSpecs(sc, "users", "TP", core.Application, []float64{8, 16}, fault.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Workload.Types[0].Users != 8 || specs[1].Workload.Types[0].Users != 16 {
		t.Errorf("users not applied: %d, %d",
			specs[0].Workload.Types[0].Users, specs[1].Workload.Types[0].Users)
	}
	if specs[0].Seed != specs[1].Seed {
		t.Error("seed drifted across points")
	}
}
