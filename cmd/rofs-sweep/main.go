// Command rofs-sweep runs a one-dimensional parameter sweep and emits CSV
// — the tool behind sensitivity studies and the seed-variance numbers in
// EXPERIMENTS.md.
//
// Sweepable parameters:
//
//	seed           re-run the same configuration under different seeds
//	users          scale every file type's user count
//	stripe         stripe-unit size (bytes, powers of the base value)
//	disks          number of drives
//	grow           restricted buddy grow factor (fractional values allowed)
//	sizes          restricted buddy block-size count (2-5)
//	rebuild-pause  fault: rebuild throttle pause between chunks (ms)
//	instances      cluster: fleet size (app test only)
//	routing        cluster: routing policy by name (rr, least, affinity)
//	admission      cluster: admission policy by name (none, token, queue)
//	rate           open-loop Poisson arrival rate (ops/s, app test only)
//
// The fault-scenario flags (-fail-at, -mttf, -transient, -rebuild, ...)
// apply to every sweep point, so a degraded-mode sweep is any ordinary
// sweep with a scenario attached. The cluster flags (-instances, -routing,
// -admission, -rate, ...) likewise fix the fleet shape across the sweep;
// the cluster sweep parameters vary one of those axes per point.
//
// Examples:
//
//	rofs-sweep -param seed -values 1,2,3,4,5 -workload TP -test app
//	rofs-sweep -param stripe -values 8192,24576,98304 -workload SC -test seq
//	rofs-sweep -param grow -values 1,1.5,2 -workload TS -test alloc
//	rofs-sweep -param users -values 8,16,32,64 -workload TP -test app -scale full -jobs 4
//	rofs-sweep -param rebuild-pause -values 0,5,20,100 -workload TS -test app \
//	  -layout raid5 -disks 4 -fail-at 20000 -rebuild
//	rofs-sweep -param instances -values 1,2,4,8 -workload TP -test app -rate 400
//	rofs-sweep -param routing -values rr,least,affinity -workload TP -test app \
//	  -instances 4 -rate 400 -snapshot-ms 250
//	rofs-sweep -param rate -values 100,200,400,800 -workload TP -test app \
//	  -instances 4 -admission queue -queue-cap 64
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/experiments"
	"rofs/internal/fault"
	"rofs/internal/metrics"
	"rofs/internal/prof"
	"rofs/internal/report"
	"rofs/internal/runner"
	"rofs/internal/stats"
	"rofs/internal/workload"
)

func main() {
	var (
		paramFlag    = flag.String("param", "seed", "seed | users | stripe | disks | grow | sizes | rebuild-pause | instances | routing | admission | rate")
		valuesFlag   = flag.String("values", "1,2,3", "comma-separated values to sweep")
		workloadFlag = flag.String("workload", "TP", "TS | TP | SC")
		testFlag     = flag.String("test", "app", "alloc | app | seq")
		scaleFlag    = flag.String("scale", "bench", "full | bench")
		layoutFlag   = flag.String("layout", "striped", "striped | mirrored | raid5 | parity")
		disksFlag    = flag.Int("disks", 0, "override number of drives (fixed across the sweep)")
		csvFlag      = flag.Bool("csv", true, "emit CSV (false: aligned table)")
		summaryFlag  = flag.Bool("summary", false, "append mean ± 95% CI rows per metric (useful with -param seed)")
		jobsFlag     = flag.Int("jobs", runtime.GOMAXPROCS(0), "maximum simulations running at once")
		timeoutFlag  = flag.Duration("timeout", 0, "overall deadline (e.g. 10m; 0 means none)")

		metricsFlag    = flag.String("metrics", "", "write one metrics bundle per sweep point into this directory")
		metricsFmtFlag = flag.String("metrics-format", "json", "bundle encoding: json | csv | prom")
		metricsIntFlag = flag.Float64("metrics-interval", metrics.DefaultIntervalMS, "timeline sampling interval (simulated ms)")

		cpuProfFlag  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfFlag  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		execTraceFlg = flag.String("exectrace", "", "write a runtime execution trace to this file")

		// fault-scenario knobs, applied to every sweep point
		faultFlags = fault.AddFlags(flag.CommandLine)

		// cluster + open-loop knobs, fixed across the sweep unless a
		// cluster parameter varies one of them per point
		clusterFlags = cluster.AddFlags(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := prof.Start(prof.Flags{CPUProfile: *cpuProfFlag, MemProfile: *memProfFlag, Trace: *execTraceFlg})
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "rofs-sweep: %v\n", err)
		}
	}()

	values, err := parseValues(*valuesFlag)
	if err != nil {
		fatal("%v", err)
	}

	// The scale is the same for every point; select it once.
	var sc experiments.Scale
	switch *scaleFlag {
	case "full":
		sc = experiments.FullScale()
	case "bench":
		sc = experiments.BenchScale()
	default:
		fatal("unknown scale %q", *scaleFlag)
	}

	if *disksFlag > 0 {
		sc.Disk.NDisks = *disksFlag
	}
	switch *layoutFlag {
	case "striped":
		sc.Disk.Layout = disk.Striped
	case "mirrored":
		sc.Disk.Layout = disk.Mirrored
	case "raid5":
		sc.Disk.Layout = disk.RAID5
	case "parity":
		sc.Disk.Layout = disk.ParityStriped
	default:
		fatal("unknown layout %q", *layoutFlag)
	}

	kind, err := parseTest(*testFlag)
	if err != nil {
		fatal("%v", err)
	}

	faults := faultFlags.Scenario()
	if err := faults.Validate(); err != nil {
		fatal("%v", err)
	}

	arrivals, err := clusterFlags.Arrivals()
	if err != nil {
		fatal("%v", err)
	}
	specs, err := buildSpecs(sc, *paramFlag, *workloadFlag, kind, values, faults,
		clusterFlags.Config(), arrivals)
	if err != nil {
		fatal("%v", err)
	}

	// Ctrl-C / SIGTERM cancel the context: in-flight simulations stop at
	// their next operation, completed rows still render, and the process
	// exits nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeoutFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeoutFlag)
		defer cancel()
	}
	metricsFmt, err := metrics.ParseFormat(*metricsFmtFlag)
	if err != nil {
		fatal("%v", err)
	}
	pool := runner.New(*jobsFlag)
	if *metricsFlag != "" {
		pool.MetricsIntervalMS = *metricsIntFlag
	}
	pool.OnResult = func(_ int, r runner.Result) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "  run %-42s FAILED: %v\n", r.Spec.Label(), r.Err)
			return
		}
		st := r.Outcome.Stats
		note := ""
		if r.Cached {
			note = "  (cached)"
		}
		fmt.Fprintf(os.Stderr, "  run %-42s %6.2fs wall  %12.0f ms simulated  %9d events  %8.0f events/sec%s\n",
			r.Spec.Label(), r.Wall.Seconds(), st.SimMS, st.Events,
			float64(st.Events)/r.Wall.Seconds(), note)
	}
	outs, runErr := pool.Run(ctx, specs)
	interrupted := ctx.Err() != nil
	if runErr != nil && !interrupted {
		fatal("%v", runErr)
	}
	if *metricsFlag != "" {
		for _, r := range outs {
			if r.Err != nil {
				continue
			}
			if _, err := runner.SaveMetrics(*metricsFlag, metricsFmt, r.Spec.Label(), r.Outcome.Metrics); err != nil {
				fatal("%v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "rofs-sweep: wrote per-point metrics bundles to %s/\n", *metricsFlag)
	}

	// Rows come back in submission order, so the CSV is ordered by value
	// regardless of which simulation finished first.
	t := report.NewTable("",
		*paramFlag, "policy", "workload", "test", "metric1", "metric2", "metric3", "metric4")
	var m1, m2, m3, m4 stats.Welford
	completed := 0
	for i, r := range outs {
		if r.Err != nil {
			continue
		}
		completed++
		v := values[i]
		sp := r.Spec
		switch kind {
		case core.Allocation:
			res := r.Outcome.Frag
			t.AddRow(v, sp.Policy.Name(), sp.Workload.Name, "alloc",
				f(res.InternalPct), f(res.ExternalPct), fmt.Sprint(res.Ops), "")
			m1.Add(res.InternalPct)
			m2.Add(res.ExternalPct)
			m3.Add(float64(res.Ops))
		default:
			res := r.Outcome.Perf
			// metric4 is the admission reject rate — meaningful only for
			// fleet rows; plain rows leave it blank.
			rej := ""
			if res.Cluster != nil {
				rej = f(res.Cluster.RejectPct)
				m4.Add(res.Cluster.RejectPct)
			}
			t.AddRow(v, sp.Policy.Name(), sp.Workload.Name, *testFlag,
				f(res.Percent), f(res.MeanLatencyMS), f(res.P95LatencyMS), rej)
			m1.Add(res.Percent)
			m2.Add(res.MeanLatencyMS)
			m3.Add(res.P95LatencyMS)
		}
	}
	if *summaryFlag {
		ci := func(w *stats.Welford) string {
			if w.N() == 0 {
				return ""
			}
			return fmt.Sprintf("%.2f±%.2f", w.Mean(), w.CI95())
		}
		t.AddRow("mean±CI95", "", "", "", ci(&m1), ci(&m2), ci(&m3), ci(&m4))
	}
	if *csvFlag {
		if err := t.RenderCSV(os.Stdout); err != nil {
			fatal("%v", err)
		}
	} else {
		t.Render(os.Stdout)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "rofs-sweep: interrupted (%v); rendered %d of %d completed points\n",
			ctx.Err(), completed, len(specs))
		os.Exit(1)
	}
}

// parseValues splits a comma-separated list into tokens. Values stay
// strings so name-valued parameters (routing, admission) sweep like
// numeric ones; numeric parameters convert and validate per parameter in
// buildSpecs.
func parseValues(list string) ([]string, error) {
	var values []string
	for _, tok := range strings.Split(list, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			values = append(values, tok)
		}
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("no values to sweep")
	}
	return values, nil
}

// parseTest maps the -test flag to a runner test kind.
func parseTest(name string) (core.TestKind, error) {
	switch name {
	case "alloc":
		return core.Allocation, nil
	case "app":
		return core.Application, nil
	case "seq":
		return core.Sequential, nil
	}
	return 0, fmt.Errorf("unknown test %q", name)
}

// asFloat converts a numeric sweep token.
func asFloat(param, tok string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q needs numeric values, got %q", param, tok)
	}
	return v, nil
}

// asInt converts an integer-valued parameter, rejecting fractions.
func asInt(param, tok string) (int64, error) {
	v, err := asFloat(param, tok)
	if err != nil {
		return 0, err
	}
	if v != math.Trunc(v) {
		return 0, fmt.Errorf("parameter %q needs integer values, got %g", param, v)
	}
	return int64(v), nil
}

// buildSpecs declares one Spec per sweep value for the given parameter.
// The cluster config and arrival process from the flags are the base every
// point starts from; the cluster parameters vary one axis per point.
func buildSpecs(sc experiments.Scale, param, wlName string, kind core.TestKind, values []string,
	faults fault.Scenario, baseCC cluster.Config, baseArr *workload.Arrivals) ([]runner.Spec, error) {
	specs := make([]runner.Spec, 0, len(values))
	for _, tok := range values {
		pt := sc
		fl := faults
		cc := baseCC
		var arr *workload.Arrivals
		if baseArr != nil {
			a := *baseArr // each point owns its arrival block
			arr = &a
		}
		policy := core.RBuddy(5, 1, true)
		wl, err := pt.Workload(wlName)
		if err != nil {
			return nil, err
		}
		switch param {
		case "seed":
			n, err := asInt(param, tok)
			if err != nil {
				return nil, err
			}
			pt.Seed = n
		case "users":
			n, err := asInt(param, tok)
			if err != nil {
				return nil, err
			}
			for i := range wl.Types {
				wl.Types[i].Users = int(n)
			}
		case "stripe":
			n, err := asInt(param, tok)
			if err != nil {
				return nil, err
			}
			pt.Disk.StripeUnitBytes = n
		case "disks":
			n, err := asInt(param, tok)
			if err != nil {
				return nil, err
			}
			pt.Disk.NDisks = int(n)
		case "grow":
			v, err := asFloat(param, tok)
			if err != nil {
				return nil, err
			}
			policy = core.RBuddy(5, v, true)
		case "sizes":
			n, err := asInt(param, tok)
			if err != nil {
				return nil, err
			}
			policy = core.RBuddy(int(n), 1, true)
		case "rebuild-pause":
			v, err := asFloat(param, tok)
			if err != nil {
				return nil, err
			}
			if !fl.Enabled() || !fl.Rebuild {
				return nil, fmt.Errorf("parameter %q needs a rebuild scenario (-fail-at or -mttf, plus -rebuild)", param)
			}
			if v < 0 {
				return nil, fmt.Errorf("parameter %q needs values >= 0, got %g", param, v)
			}
			fl.RebuildPauseMS = v
		case "instances":
			n, err := asInt(param, tok)
			if err != nil {
				return nil, err
			}
			cc.Instances = int(n)
		case "routing":
			cc.Routing = tok
			if cc.Instances == 0 {
				return nil, fmt.Errorf("parameter %q needs a fleet (-instances N)", param)
			}
		case "admission":
			if tok == "none" {
				cc.Admission = ""
			} else {
				cc.Admission = tok
			}
			if cc.Instances == 0 {
				return nil, fmt.Errorf("parameter %q needs a fleet (-instances N)", param)
			}
		case "rate":
			v, err := asFloat(param, tok)
			if err != nil {
				return nil, err
			}
			if v <= 0 {
				return nil, fmt.Errorf("parameter %q needs values > 0, got %g", param, v)
			}
			a := workload.Arrivals{RatePerSec: v}
			if baseArr != nil {
				a.Clients = baseArr.Clients
			}
			arr = &a
		default:
			return nil, fmt.Errorf("unknown parameter %q", param)
		}
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		if cc.Enabled() && kind != core.Application {
			return nil, fmt.Errorf("cluster sweeps run the app test only, not %s", kind)
		}
		if arr != nil {
			if kind != core.Application {
				return nil, fmt.Errorf("open-loop arrivals run the app test only, not %s", kind)
			}
			wl.Arrivals = arr
			if err := wl.Validate(); err != nil {
				return nil, err
			}
		}
		sp := pt.Spec(policy, wl, kind)
		sp.Name = fmt.Sprintf("%s=%s %s/%s/%s", param, tok, policy.Name(), wl.Name, kind)
		sp.Faults = fl
		sp.Cluster = cc
		specs = append(specs, sp)
	}
	return specs, nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-sweep: "+format+"\n", args...)
	os.Exit(1)
}
