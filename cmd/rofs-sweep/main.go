// Command rofs-sweep runs a one-dimensional parameter sweep and emits CSV
// — the tool behind sensitivity studies and the seed-variance numbers in
// EXPERIMENTS.md.
//
// Sweepable parameters:
//
//	seed     re-run the same configuration under different seeds
//	users    scale every file type's user count
//	stripe   stripe-unit size (bytes, powers of the base value)
//	disks    number of drives
//	grow     restricted buddy grow factor
//	sizes    restricted buddy block-size count (2-5)
//
// Examples:
//
//	rofs-sweep -param seed -values 1,2,3,4,5 -workload TP -test app
//	rofs-sweep -param stripe -values 8192,24576,98304 -workload SC -test seq
//	rofs-sweep -param users -values 8,16,32,64 -workload TP -test app -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/report"
	"rofs/internal/stats"
)

func main() {
	var (
		paramFlag    = flag.String("param", "seed", "seed | users | stripe | disks | grow | sizes")
		valuesFlag   = flag.String("values", "1,2,3", "comma-separated values to sweep")
		workloadFlag = flag.String("workload", "TP", "TS | TP | SC")
		testFlag     = flag.String("test", "app", "alloc | app | seq")
		scaleFlag    = flag.String("scale", "bench", "full | bench")
		csvFlag      = flag.Bool("csv", true, "emit CSV (false: aligned table)")
		summaryFlag  = flag.Bool("summary", false, "append mean ± 95% CI rows per metric (useful with -param seed)")
	)
	flag.Parse()

	var values []int64
	for _, tok := range strings.Split(*valuesFlag, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			fatal("bad value %q: %v", tok, err)
		}
		values = append(values, v)
	}
	if len(values) == 0 {
		fatal("no values to sweep")
	}

	t := report.NewTable("",
		*paramFlag, "policy", "workload", "test", "metric1", "metric2", "metric3")
	var m1, m2, m3 stats.Welford
	for _, v := range values {
		sc := experiments.BenchScale()
		if *scaleFlag == "full" {
			sc = experiments.FullScale()
		}
		spec := core.RBuddy(5, 1, true)
		wl, err := sc.Workload(*workloadFlag)
		if err != nil {
			fatal("%v", err)
		}
		switch *paramFlag {
		case "seed":
			sc.Seed = v
		case "users":
			for i := range wl.Types {
				wl.Types[i].Users = int(v)
			}
		case "stripe":
			sc.Disk.StripeUnitBytes = v
		case "disks":
			sc.Disk.NDisks = int(v)
		case "grow":
			spec = core.RBuddy(5, v, true)
		case "sizes":
			spec = core.RBuddy(int(v), 1, true)
		default:
			fatal("unknown parameter %q", *paramFlag)
		}
		cfg := sc.Config(spec, wl)
		switch *testFlag {
		case "alloc":
			res, err := core.RunAllocation(cfg)
			if err != nil {
				fatal("%v", err)
			}
			t.AddRow(v, spec.Name(), wl.Name, "alloc",
				f(res.InternalPct), f(res.ExternalPct), fmt.Sprint(res.Ops))
			m1.Add(res.InternalPct)
			m2.Add(res.ExternalPct)
			m3.Add(float64(res.Ops))
		case "app", "seq":
			var res core.PerfResult
			if *testFlag == "app" {
				res, err = core.RunApplication(cfg)
			} else {
				res, err = core.RunSequential(cfg)
			}
			if err != nil {
				fatal("%v", err)
			}
			t.AddRow(v, spec.Name(), wl.Name, *testFlag,
				f(res.Percent), f(res.MeanLatencyMS), f(res.P95LatencyMS))
			m1.Add(res.Percent)
			m2.Add(res.MeanLatencyMS)
			m3.Add(res.P95LatencyMS)
		default:
			fatal("unknown test %q", *testFlag)
		}
	}
	if *summaryFlag {
		ci := func(w *stats.Welford) string {
			return fmt.Sprintf("%.2f±%.2f", w.Mean(), w.CI95())
		}
		t.AddRow("mean±CI95", "", "", "", ci(&m1), ci(&m2), ci(&m3))
	}
	if *csvFlag {
		if err := t.RenderCSV(os.Stdout); err != nil {
			fatal("%v", err)
		}
	} else {
		t.Render(os.Stdout)
	}
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-sweep: "+format+"\n", args...)
	os.Exit(1)
}
