package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rofs/internal/obs"
	"rofs/internal/report"
	"rofs/internal/service"
)

// SchemaV1 identifies the rofs-load JSON report format.
const SchemaV1 = "rofs-load/v1"

// Client-side outcome statuses beyond the server's run states.
const (
	statusRejected = "rejected" // 503 shed at admission
	statusError    = "error"    // transport or protocol failure
)

// outcome is one request's client-side record.
type outcome struct {
	Trace     string  `json:"trace"`
	Class     string  `json:"class"`
	Ramp      bool    `json:"ramp,omitempty"`
	Status    string  `json:"status"`
	DurMS     float64 `json:"dur_ms"`
	RunID     string  `json:"run,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	DiskHit   bool    `json:"disk_hit,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// latSummary is the percentile digest over steady-state completed
// requests (ramp excluded).
type latSummary struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// classStats aggregates one request class (or the total row).
type classStats struct {
	Count     int64 `json:"count"`
	Ramp      int64 `json:"ramp,omitempty"`
	Done      int64 `json:"done"`
	Cached    int64 `json:"cached"`
	Coalesced int64 `json:"coalesced"`
	DiskHits  int64 `json:"disk_hits"`
	Rejected  int64 `json:"rejected"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Errors    int64 `json:"errors"`

	Latency       *latSummary `json:"latency,omitempty"`
	ThroughputRPS float64     `json:"throughput_rps"`

	steadyDoneMS []float64
}

// scrapePoint is one /metrics sample on the scrape timeline: every
// non-bucket rofs_ scalar, keyed by exposition name.
type scrapePoint struct {
	OffsetMS float64            `json:"offset_ms"`
	Scalars  map[string]float64 `json:"scalars"`
}

// agreement cross-checks client-observed accounting against the
// server's Prometheus counter deltas over the load window.
type agreement struct {
	ClientCompleted      int64   `json:"client_completed"`
	ClientRejected       int64   `json:"client_rejected"`
	ClientErrors         int64   `json:"client_errors"`
	ServerCompletedDelta float64 `json:"server_completed_delta"`
	ServerRejectedDelta  float64 `json:"server_rejected_delta"`
	OK                   bool    `json:"ok"`
}

// loadReport is the rofs-load/v1 document.
type loadReport struct {
	Schema         string                 `json:"schema"`
	Mode           string                 `json:"mode"`
	Server         string                 `json:"server"`
	Workers        int                    `json:"workers,omitempty"`
	RPS            float64                `json:"rps,omitempty"`
	DurationSec    float64                `json:"duration_seconds"`
	RampSec        float64                `json:"ramp_seconds"`
	ElapsedSec     float64                `json:"elapsed_seconds"`
	Seed           int64                  `json:"seed"`
	DroppedClient  int64                  `json:"dropped_client_side,omitempty"`
	Classes        map[string]*classStats `json:"classes"`
	Total          *classStats            `json:"total"`
	Scrapes        []scrapePoint          `json:"scrapes,omitempty"`
	Agreement      agreement              `json:"agreement"`
	Requests       []outcome              `json:"requests"`
	ServerFinal    map[string]float64     `json:"server_final"`
	ServerBaseline map[string]float64     `json:"server_baseline"`
}

type reportInputs struct {
	mode, server   string
	workers        int
	rps            float64
	duration, ramp time.Duration
	elapsed        time.Duration
	seed           int64
	dropped        int64
	outcomes       []outcome
	scrapes        []scrapePoint
	first, last    map[string]float64
}

// buildReport folds the raw outcomes and scrapes into the v1 document.
func buildReport(in reportInputs) *loadReport {
	classes := map[string]*classStats{
		classFresh:  {},
		classRepeat: {},
		classHeavy:  {},
	}
	total := &classStats{}
	for _, oc := range in.outcomes {
		cs, ok := classes[oc.Class]
		if !ok {
			cs = &classStats{}
			classes[oc.Class] = cs
		}
		for _, c := range []*classStats{cs, total} {
			c.observe(oc)
		}
	}
	steadyWindow := (in.duration - in.ramp).Seconds()
	for _, cs := range classes {
		cs.finish(steadyWindow)
	}
	total.finish(steadyWindow)

	ag := agreement{
		ClientCompleted: total.Done + total.Failed + total.Canceled,
		ClientRejected:  total.Rejected,
		ClientErrors:    total.Errors,
	}
	ag.ServerCompletedDelta = delta(in.first, in.last,
		"rofs_service_runs_done", "rofs_service_runs_failed", "rofs_service_runs_canceled")
	ag.ServerRejectedDelta = delta(in.first, in.last, "rofs_service_runs_rejected")
	// Transport errors leave the client blind to the run's server-side
	// fate, so agreement is only asserted on clean runs.
	ag.OK = ag.ClientErrors == 0 &&
		float64(ag.ClientCompleted) == ag.ServerCompletedDelta &&
		float64(ag.ClientRejected) == ag.ServerRejectedDelta

	return &loadReport{
		Schema:         SchemaV1,
		Mode:           in.mode,
		Server:         in.server,
		Workers:        in.workers,
		RPS:            in.rps,
		DurationSec:    in.duration.Seconds(),
		RampSec:        in.ramp.Seconds(),
		ElapsedSec:     in.elapsed.Seconds(),
		Seed:           in.seed,
		DroppedClient:  in.dropped,
		Classes:        classes,
		Total:          total,
		Scrapes:        in.scrapes,
		Agreement:      ag,
		Requests:       in.outcomes,
		ServerFinal:    in.last,
		ServerBaseline: in.first,
	}
}

func (c *classStats) observe(oc outcome) {
	c.Count++
	if oc.Ramp {
		c.Ramp++
	}
	switch oc.Status {
	case service.StateDone:
		c.Done++
		if oc.Cached {
			c.Cached++
		}
		if oc.Coalesced {
			c.Coalesced++
		}
		if oc.DiskHit {
			c.DiskHits++
		}
		if !oc.Ramp {
			c.steadyDoneMS = append(c.steadyDoneMS, oc.DurMS)
		}
	case service.StateFailed:
		c.Failed++
	case service.StateCanceled:
		c.Canceled++
	case statusRejected:
		c.Rejected++
	default:
		c.Errors++
	}
}

func (c *classStats) finish(steadyWindowSec float64) {
	if len(c.steadyDoneMS) > 0 {
		sort.Float64s(c.steadyDoneMS)
		sum := 0.0
		for _, v := range c.steadyDoneMS {
			sum += v
		}
		c.Latency = &latSummary{
			Count:  len(c.steadyDoneMS),
			P50MS:  percentile(c.steadyDoneMS, 0.50),
			P95MS:  percentile(c.steadyDoneMS, 0.95),
			P99MS:  percentile(c.steadyDoneMS, 0.99),
			P999MS: percentile(c.steadyDoneMS, 0.999),
			MeanMS: sum / float64(len(c.steadyDoneMS)),
			MaxMS:  c.steadyDoneMS[len(c.steadyDoneMS)-1],
		}
		if steadyWindowSec > 0 {
			c.ThroughputRPS = float64(len(c.steadyDoneMS)) / steadyWindowSec
		}
	}
	c.steadyDoneMS = nil
}

// percentile reads the q-quantile from a sorted slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func delta(first, last map[string]float64, names ...string) float64 {
	var d float64
	for _, n := range names {
		d += last[n] - first[n]
	}
	return d
}

// scraper polls /metrics on an interval from its own goroutine,
// validating the exposition (parse + histogram invariants) every time.
type scraper struct {
	client   *service.Client
	interval time.Duration

	mu      sync.Mutex
	pts     []scrapePoint
	lastErr error
	cancel  context.CancelFunc
	done    chan struct{}
}

func newScraper(client *service.Client, interval time.Duration) *scraper {
	return &scraper{client: client, interval: interval}
}

func (s *scraper) start(ctx context.Context, origin time.Time) {
	if s.interval <= 0 {
		return
	}
	ctx, s.cancel = context.WithCancel(ctx)
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				scalars, err := scrapeOnce(ctx, s.client)
				s.mu.Lock()
				if err != nil {
					if s.lastErr == nil && ctx.Err() == nil {
						s.lastErr = err
					}
				} else {
					s.pts = append(s.pts, scrapePoint{
						OffsetMS: obs.Since(origin),
						Scalars:  scalars,
					})
				}
				s.mu.Unlock()
			case <-ctx.Done():
				return
			}
		}
	}()
}

func (s *scraper) stop() {
	if s.cancel == nil {
		return
	}
	s.cancel()
	<-s.done
}

func (s *scraper) points() []scrapePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pts
}

func (s *scraper) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// scrapeOnce fetches and validates one /metrics exposition, returning
// its non-bucket scalars.
func scrapeOnce(ctx context.Context, client *service.Client) (map[string]float64, error) {
	body, err := client.Metrics(ctx)
	if err != nil {
		return nil, err
	}
	sc, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("invalid exposition: %w", err)
	}
	if err := sc.CheckHistograms(); err != nil {
		return nil, fmt.Errorf("histogram invariant: %w", err)
	}
	return sc.Scalars(), nil
}

// printSummary renders the human tables.
func printSummary(w io.Writer, rep *loadReport) {
	title := fmt.Sprintf("rofs-load %s  %s  %.0fs (ramp %.0fs, seed %d)",
		rep.Mode, rep.Server, rep.DurationSec, rep.RampSec, rep.Seed)
	t := report.NewTable(title,
		"Class", "Count", "Done", "Cached", "Disk", "Coal", "503", "Fail", "Err",
		"p50ms", "p95ms", "p99ms", "p999ms", "RPS")
	rows := []string{classFresh, classRepeat, classHeavy}
	for _, name := range rows {
		cs := rep.Classes[name]
		if cs == nil || cs.Count == 0 {
			continue
		}
		t.AddRow(statRow(name, cs)...)
	}
	t.AddRow(statRow("total", rep.Total)...)
	t.Render(w)

	ok := "agree"
	if !rep.Agreement.OK {
		ok = "DISAGREE"
	}
	fmt.Fprintf(w, "accounting: client %d completed + %d rejected vs server %+.0f/%+.0f -> %s\n",
		rep.Agreement.ClientCompleted, rep.Agreement.ClientRejected,
		rep.Agreement.ServerCompletedDelta, rep.Agreement.ServerRejectedDelta, ok)
	if rep.DroppedClient > 0 {
		fmt.Fprintf(w, "open loop dropped %d arrivals client-side (over -max-inflight)\n", rep.DroppedClient)
	}
}

func statRow(name string, cs *classStats) []any {
	lat := latSummary{}
	if cs.Latency != nil {
		lat = *cs.Latency
	}
	return []any{name, cs.Count, cs.Done, cs.Cached, cs.DiskHits, cs.Coalesced,
		cs.Rejected, cs.Failed, cs.Errors,
		fmt.Sprintf("%.1f", lat.P50MS), fmt.Sprintf("%.1f", lat.P95MS),
		fmt.Sprintf("%.1f", lat.P99MS), fmt.Sprintf("%.1f", lat.P999MS),
		fmt.Sprintf("%.2f", cs.ThroughputRPS)}
}

func writeReport(path string, rep *loadReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
