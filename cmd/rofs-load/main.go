// Command rofs-load drives a rofs-server with a reproducible mixed
// workload and measures the serving path from the client side: latency
// percentiles, throughput, cache/coalesce rates, and 503 shedding,
// cross-checked against the server's own /metrics counters.
//
// Two driving modes:
//
//	closed  N workers, each submitting the next request as soon as the
//	        previous one finishes (throughput bounded by the server)
//	open    target arrival rate with Poisson interarrivals, independent
//	        of completions (exposes queueing and shedding)
//
// The request mix is deterministic for a fixed -seed: "fresh" requests
// use a never-before-seen simulation seed (full simulation cost),
// "repeat" requests draw from a small pool of -distinct specs (cache
// hits and single-flight coalescing), and "heavy" requests carry an
// oversized simulated-time cap (long worker occupancy, the natural way
// to push a small queue into 503 shedding). Every request carries a
// deterministic trace ID derived from (-seed, index) via the
// X-Rofs-Trace-Id header, so each one can be matched to exactly one
// server access-log record.
//
// While driving, rofs-load scrapes /metrics on -scrape intervals,
// validating the exposition format on every scrape. The final report —
// schema rofs-load/v1, written with -json — embeds per-class stats, the
// scrape timeline, every request outcome, and an agreement block
// comparing client-observed completions and rejections against the
// server's counter deltas.
//
// Examples:
//
//	rofs-load -mode closed -workers 4 -duration 30s -json report.json
//	rofs-load -mode open -rps 20 -heavy-frac 0.2 -duration 1m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"rofs/internal/obs"
	"rofs/internal/service"
	"rofs/internal/workload"
)

func main() {
	fs := flag.NewFlagSet("rofs-load", flag.ExitOnError)
	var (
		serverFlag   = fs.String("server", envOr("ROFS_SERVER", "http://127.0.0.1:8080"), "rofs-server base URL")
		modeFlag     = fs.String("mode", "closed", "closed (N workers) | open (Poisson arrivals)")
		workersFlag  = fs.Int("workers", 4, "closed loop: concurrent workers")
		rpsFlag      = fs.Float64("rps", 8, "open loop: target arrival rate (requests/second)")
		durationFlag = fs.Duration("duration", 10*time.Second, "how long to drive load")
		rampFlag     = fs.Duration("ramp", 0, "warmup excluded from latency and throughput stats")
		seedFlag     = fs.Int64("seed", 42, "request-mix and trace-ID seed")

		distinctFlag = fs.Int("distinct", 8, "size of the repeatable spec pool")
		repeatFlag   = fs.Float64("repeat-frac", 0.4, "fraction of requests drawn from the repeatable pool")
		heavyFlag    = fs.Float64("heavy-frac", 0, "fraction of requests with an oversized sim cap")
		baseSimFlag  = fs.Float64("base-sim", 15_000, "simulated-time cap (ms) for fresh and repeat requests")
		heavySimFlag = fs.Float64("heavy-sim", 120_000, "simulated-time cap (ms) for heavy requests")

		traceFlag = fs.String("arrival-trace", "", "open-loop trace file attached inline to every fresh request")

		scrapeFlag   = fs.Duration("scrape", time.Second, "metrics scrape interval (0 disables)")
		timeoutFlag  = fs.Duration("timeout", 2*time.Minute, "per-request client timeout")
		inflightFlag = fs.Int("max-inflight", 256, "open loop: in-flight cap (excess arrivals are dropped client-side)")
		jsonFlag     = fs.String("json", "", "write the rofs-load/v1 report to this file (- for stdout)")
	)
	fs.Parse(os.Args[1:])

	if *modeFlag != "closed" && *modeFlag != "open" {
		fatal("unknown -mode %q (want closed or open)", *modeFlag)
	}
	if *repeatFlag < 0 || *heavyFlag < 0 || *repeatFlag+*heavyFlag > 1 {
		fatal("-repeat-frac and -heavy-frac must be non-negative and sum to at most 1")
	}
	if *distinctFlag < 1 {
		fatal("-distinct must be at least 1")
	}
	if *rampFlag >= *durationFlag {
		fatal("-ramp must be shorter than -duration")
	}

	client := &service.Client{BaseURL: *serverFlag}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !client.Healthy(5 * time.Second) {
		fatal("server %s is not answering /healthz", *serverFlag)
	}

	// Baseline scrape before any load, so agreement deltas exclude runs
	// the server served earlier in its life.
	first, err := scrapeOnce(ctx, client)
	if err != nil {
		fatal("baseline scrape: %v", err)
	}

	gen := &generator{
		rng:        rand.New(rand.NewSource(*seedFlag)),
		seed:       *seedFlag,
		distinct:   *distinctFlag,
		repeatFrac: *repeatFlag,
		heavyFrac:  *heavyFlag,
		baseSimMS:  *baseSimFlag,
		heavySimMS: *heavySimFlag,
	}
	if *traceFlag != "" {
		// The server rejects trace_file by design (it won't read the
		// submitter's filesystem), so the file is loaded here and shipped
		// inline in each request body.
		a, err := workload.LoadTraceFile(*traceFlag)
		if err != nil {
			fatal("%v", err)
		}
		gen.arrivals = a
	}

	scraper := newScraper(client, *scrapeFlag)
	start := time.Now()
	deadline := start.Add(*durationFlag)
	rampEnd := start.Add(*rampFlag)
	scraper.start(ctx, start)

	var outcomes []outcome
	var dropped int64
	if *modeFlag == "closed" {
		outcomes = driveClosed(ctx, client, gen, *workersFlag, deadline, rampEnd, *timeoutFlag)
	} else {
		outcomes, dropped = driveOpen(ctx, client, gen, *rpsFlag, *inflightFlag, deadline, rampEnd, *timeoutFlag)
	}
	elapsed := time.Since(start)
	scraper.stop()

	// Final scrape only after every in-flight request has resolved, so
	// the server's counters have settled to their terminal values.
	last, err := scrapeOnce(ctx, client)
	if err != nil {
		fatal("final scrape: %v", err)
	}
	if err := scraper.err(); err != nil {
		fatal("metrics scrape during load: %v", err)
	}

	rep := buildReport(reportInputs{
		mode: *modeFlag, server: *serverFlag,
		workers: *workersFlag, rps: *rpsFlag,
		duration: *durationFlag, ramp: *rampFlag, elapsed: elapsed,
		seed: *seedFlag, dropped: dropped,
		outcomes: outcomes, scrapes: scraper.points(),
		first: first, last: last,
	})

	printSummary(os.Stdout, rep)
	if *jsonFlag != "" {
		if err := writeReport(*jsonFlag, rep); err != nil {
			fatal("%v", err)
		}
		if *jsonFlag != "-" {
			fmt.Fprintf(os.Stderr, "rofs-load: wrote %s\n", *jsonFlag)
		}
	}
	if !rep.Agreement.OK {
		fatal("client/server accounting disagrees: %+v", rep.Agreement)
	}
}

// generator produces the deterministic request stream. All randomness
// flows through one rand.Rand consumed from a single goroutine, so a
// fixed seed yields the same class sequence, spec choices, and (open
// loop) interarrival gaps.
type generator struct {
	rng        *rand.Rand
	seed       int64
	distinct   int
	repeatFrac float64
	heavyFrac  float64
	baseSimMS  float64
	heavySimMS float64
	arrivals   *workload.Arrivals // optional, attached to fresh requests

	fresh, heavy int // never-reused seed sequences
}

// item is one generated request plus its identity.
type item struct {
	idx   int
	class string
	ramp  bool
	trace string
	req   service.RunRequest
}

// Request classes.
const (
	classFresh  = "fresh"
	classRepeat = "repeat"
	classHeavy  = "heavy"
)

// next generates request idx. Trace IDs mix the seed and index through
// a 64-bit multiply so distinct (seed, idx) pairs map to distinct IDs
// within any realistic run length.
func (g *generator) next(idx int, ramp bool) item {
	it := item{
		idx:   idx,
		ramp:  ramp,
		trace: obs.TraceIDFromUint64(uint64(g.seed)*0x9E3779B97F4A7C15 + uint64(idx)),
		req: service.RunRequest{
			Policy:   "buddy",
			Workload: "TS",
			Test:     "app",
			Scale:    "bench",
			MaxSimMS: g.baseSimMS,
		},
	}
	r := g.rng.Float64()
	switch {
	case r < g.heavyFrac:
		it.class = classHeavy
		g.heavy++
		it.req.Seed = 2_000_000 + int64(g.heavy)
		it.req.MaxSimMS = g.heavySimMS
		// Disable early stabilization so heavy runs occupy a worker for
		// their whole simulated span.
		it.req.StableWindows = 1 << 20
	case r < g.heavyFrac+g.repeatFrac:
		it.class = classRepeat
		// Small fixed pool: repeats of the same member share a Spec key,
		// exercising the cache (sequential repeats) and single-flight
		// coalescing (concurrent repeats).
		it.req.Seed = 1 + int64(g.rng.Intn(g.distinct))
	default:
		it.class = classFresh
		g.fresh++
		it.req.Seed = 1_000_000 + int64(g.fresh)
		// Replay the imported trace (if any) instead of the closed-loop
		// mix. Repeat and heavy requests keep their classes' semantics:
		// cache hits need stable spec keys, heavy needs the long sim cap.
		it.req.Arrivals = g.arrivals
	}
	it.req.Name = fmt.Sprintf("load-%s-%06d", it.class, idx)
	return it
}

// driveClosed runs the closed loop: one generator goroutine feeding N
// workers, each submitting synchronously (?wait=1) until the deadline.
func driveClosed(ctx context.Context, client *service.Client, gen *generator,
	workers int, deadline, rampEnd time.Time, timeout time.Duration) []outcome {
	items := make(chan item)
	go func() {
		defer close(items)
		for idx := 0; ; idx++ {
			now := time.Now()
			if !now.Before(deadline) {
				return
			}
			it := gen.next(idx, now.Before(rampEnd))
			select {
			case items <- it:
			case <-ctx.Done():
				return
			}
		}
	}()

	var mu sync.Mutex
	var out []outcome
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range items {
				oc := submitOne(ctx, client, it, timeout)
				mu.Lock()
				out = append(out, oc)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out
}

// driveOpen runs the open loop: Poisson arrivals at the target rate,
// each request in its own goroutine. Arrivals beyond the in-flight cap
// are dropped client-side (and reported) rather than distorting the
// arrival process by blocking.
func driveOpen(ctx context.Context, client *service.Client, gen *generator,
	rps float64, maxInflight int, deadline, rampEnd time.Time, timeout time.Duration) ([]outcome, int64) {
	if rps <= 0 {
		fatal("-rps must be positive in open mode")
	}
	var mu sync.Mutex
	var out []outcome
	var dropped int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInflight)

	for idx := 0; ; idx++ {
		gap := time.Duration(gen.rng.ExpFloat64() / rps * float64(time.Second))
		now := time.Now()
		if now.Add(gap).After(deadline) {
			break
		}
		t := time.NewTimer(gap)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return out, dropped
		}
		it := gen.next(idx, time.Now().Before(rampEnd))
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		wg.Add(1)
		go func(it item) {
			defer wg.Done()
			defer func() { <-sem }()
			oc := submitOne(ctx, client, it, timeout)
			mu.Lock()
			out = append(out, oc)
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return out, dropped
}

// submitOne issues one traced ?wait=1 submission and classifies how it
// ended: a terminal run state, a 503 rejection, or a transport error.
func submitOne(ctx context.Context, client *service.Client, it item, timeout time.Duration) outcome {
	oc := outcome{Trace: it.trace, Class: it.class, Ramp: it.ramp}
	rctx, cancel := context.WithTimeout(obs.WithTraceID(ctx, it.trace), timeout)
	defer cancel()
	start := time.Now()
	st, err := client.SubmitWait(rctx, it.req)
	oc.DurMS = obs.Since(start)
	var apiErr *service.APIError
	switch {
	case err == nil:
		oc.Status = st.State
		oc.RunID = st.ID
		if st.Result != nil {
			oc.Cached = st.Result.Cached
			oc.Coalesced = st.Result.Coalesced
			oc.DiskHit = st.Result.DiskHit
		}
	case errors.As(err, &apiErr) && apiErr.Code == http.StatusServiceUnavailable:
		oc.Status = statusRejected
	default:
		oc.Status = statusError
		oc.Error = err.Error()
	}
	return oc
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-load: "+format+"\n", args...)
	os.Exit(1)
}
