// Command rofs-trace summarizes an event trace produced by
// `rofsim -trace <file>`: per-drive load balance and utilization, and
// per-operation-kind latency.
//
//	rofsim -workload TP -test app -trace tp.trace
//	rofs-trace tp.trace
package main

import (
	"fmt"
	"os"

	"rofs/internal/report"
	"rofs/internal/trace"
	"rofs/internal/units"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: rofs-trace <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rofs-trace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	a, err := trace.Analyze(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rofs-trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d events over %.1f s of simulated time", a.Events, a.SpanMS()/1000)
	if a.BadLines > 0 || a.Unknown > 0 {
		fmt.Printf(" (%d malformed, %d unknown skipped)", a.BadLines, a.Unknown)
	}
	fmt.Println()
	fmt.Println()

	if len(a.Drives) > 0 {
		t := report.NewTable("Per-drive activity", "Drive", "Segments", "Bytes", "Written", "Busy (s)", "Util %")
		span := a.SpanMS()
		for _, d := range a.Drives {
			util := 0.0
			if span > 0 {
				util = 100 * d.BusyMS / span
			}
			t.AddRow(d.Drive, d.Segments, units.Format(d.Bytes), units.Format(d.WriteBytes),
				fmt.Sprintf("%.1f", d.BusyMS/1000), util)
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
	if len(a.Ops) > 0 {
		t := report.NewTable("Operation latency", "Kind", "Count", "Mean (ms)", "Max (ms)")
		for _, o := range a.Ops {
			t.AddRow(o.Kind, o.Count, o.MeanLatMS, o.MaxLatMS)
		}
		t.Render(os.Stdout)
	}
}
