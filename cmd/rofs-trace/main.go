// Command rofs-trace summarizes an event trace produced by
// `rofsim -trace <file>`: per-drive load balance, utilization, and
// request-span phase breakdown, per-kind record statistics, and
// per-operation-kind latency. The summary can also be exported as a
// metrics bundle for diffing against live-run bundles.
//
//	rofsim -workload TP -test app -trace tp.trace
//	rofs-trace tp.trace
//	rofs-trace -metrics tp-summary.json tp.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"rofs/internal/metrics"
	"rofs/internal/report"
	"rofs/internal/trace"
	"rofs/internal/units"
)

func main() {
	var (
		metricsFlag    = flag.String("metrics", "", "also export the summary as a metrics bundle (- for stdout)")
		metricsFmtFlag = flag.String("metrics-format", "json", "bundle encoding: json | csv | prom")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rofs-trace [-metrics <path>] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	a, err := trace.Analyze(f)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%d events over %.1f s of simulated time", a.Events, a.SpanMS()/1000)
	if a.BadLines > 0 || a.Unknown > 0 {
		fmt.Printf(" (%d malformed, %d unknown skipped)", a.BadLines, a.Unknown)
	}
	fmt.Println()
	fmt.Println()

	if len(a.Kinds) > 0 {
		t := report.NewTable("Record kinds", "Kind", "Count", "First (s)", "Last (s)",
			"Gap mean (ms)", "Gap min", "Gap max")
		for _, k := range a.Kinds {
			t.AddRow(k.Kind, k.Count, fmt.Sprintf("%.1f", k.FirstMS/1000),
				fmt.Sprintf("%.1f", k.LastMS/1000),
				fmt.Sprintf("%.3f", k.MeanGapMS), fmt.Sprintf("%.3f", k.MinGapMS),
				fmt.Sprintf("%.3f", k.MaxGapMS))
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
	if len(a.Drives) > 0 {
		t := report.NewTable("Per-drive activity", "Drive", "Segments", "Bytes", "Written", "Busy (s)", "Util %")
		span := a.SpanMS()
		for _, d := range a.Drives {
			util := 0.0
			if span > 0 {
				util = 100 * d.BusyMS / span
			}
			t.AddRow(d.Drive, d.Segments, units.Format(d.Bytes), units.Format(d.WriteBytes),
				fmt.Sprintf("%.1f", d.BusyMS/1000), util)
		}
		t.Render(os.Stdout)
		fmt.Println()
		renderSpans(a)
	}
	if len(a.Ops) > 0 {
		t := report.NewTable("Operation latency", "Kind", "Count", "Mean (ms)", "Max (ms)")
		for _, o := range a.Ops {
			t.AddRow(o.Kind, o.Count, o.MeanLatMS, o.MaxLatMS)
		}
		t.Render(os.Stdout)
	}

	if *metricsFlag != "" {
		fmtSel, err := metrics.ParseFormat(*metricsFmtFlag)
		if err != nil {
			fatal("%v", err)
		}
		if err := toRegistry(a).WriteFile(*metricsFlag, fmtSel); err != nil {
			fatal("%v", err)
		}
	}
}

// renderSpans prints the request-lifecycle phase breakdown for drives whose
// seg records carry it (traces from before spans existed have none).
func renderSpans(a *trace.Analysis) {
	any := false
	for _, d := range a.Drives {
		if d.Spans > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	t := report.NewTable("Request spans (per-segment phase means, ms)",
		"Drive", "Spans", "Wait", "Seek", "Rotate", "Transfer")
	for _, d := range a.Drives {
		if d.Spans == 0 {
			t.AddRow(d.Drive, 0, "-", "-", "-", "-")
			continue
		}
		n := float64(d.Spans)
		t.AddRow(d.Drive, d.Spans,
			fmt.Sprintf("%.3f", d.WaitMS/n), fmt.Sprintf("%.3f", d.SeekMS/n),
			fmt.Sprintf("%.3f", d.RotMS/n), fmt.Sprintf("%.3f", d.XferMS/n))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

// toRegistry converts the analysis into a registry so a reconstructed
// trace summary exports through the same bundle formats as a live run.
func toRegistry(a *trace.Analysis) *metrics.Registry {
	reg := metrics.New(0)
	reg.SetLabel("source", "trace")
	reg.Counter("trace.events").Add(a.Events)
	reg.Counter("trace.bad_lines").Add(a.BadLines)
	reg.Counter("trace.unknown").Add(a.Unknown)
	reg.Gauge("trace.span_ms").Set(a.SpanMS())
	for _, k := range a.Kinds {
		p := "trace.kind." + k.Kind + "."
		reg.Counter(p + "count").Add(k.Count)
		reg.Gauge(p + "gap_mean_ms").Set(k.MeanGapMS)
		reg.Gauge(p + "gap_max_ms").Set(k.MaxGapMS)
	}
	for _, d := range a.Drives {
		p := fmt.Sprintf("disk.drive.%d.", d.Drive)
		reg.Counter(p + "segments").Add(d.Segments)
		reg.Counter(p + "bytes").Add(d.Bytes)
		reg.Counter(p + "bytes_written").Add(d.WriteBytes)
		reg.Gauge(p + "busy_ms").Set(d.BusyMS)
		if d.Spans > 0 {
			reg.Counter(p + "spans").Add(d.Spans)
			reg.Gauge(p + "wait_ms").Set(d.WaitMS)
			reg.Gauge(p + "seek_ms").Set(d.SeekMS)
			reg.Gauge(p + "rot_ms").Set(d.RotMS)
			reg.Gauge(p + "xfer_ms").Set(d.XferMS)
		}
	}
	for _, o := range a.Ops {
		p := "trace.op." + o.Kind + "."
		reg.Counter(p + "count").Add(o.Count)
		reg.Gauge(p + "lat_mean_ms").Set(o.MeanLatMS)
		reg.Gauge(p + "lat_max_ms").Set(o.MaxLatMS)
	}
	return reg
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-trace: "+format+"\n", args...)
	os.Exit(1)
}
