// Command rofs-benchdiff compares two rofs-bench JSON artifacts cell by
// cell and renders the deltas, so performance movement between a tracked
// BENCH_*.json and a fresh run is reviewable at a glance and enforceable
// in CI.
//
// Cells are matched by identity (workload, policy, test, instances,
// par); engine microbenchmarks by name. Only cells present in both
// files are compared — a CI -short run diffs cleanly against a tracked
// full-grid artifact — and the unmatched remainder is listed so silent
// coverage loss is visible.
//
// Three checks per matched cell:
//
//   - ns/event (wall-clock): regression past -threshold fails
//   - allocs/event: regression past -alloc-threshold (with a small
//     absolute floor, so 0.00 -> 0.01 noise does not trip) fails
//   - metric (simulated result): any drift beyond float tolerance fails —
//     the simulation itself changed, which a performance PR must not do
//
// With -report-only the table still prints and regressions are flagged,
// but the exit status stays zero — the CI mode while wall-clock noise
// on shared runners is being characterized.
//
// Usage:
//
//	rofs-benchdiff BENCH_PR8.json fresh.json
//	rofs-benchdiff -threshold 0.25 -report-only old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"rofs/internal/report"
)

// benchCell mirrors the rofs-bench cell fields the diff consumes.
type benchCell struct {
	Workload       string  `json:"workload"`
	Policy         string  `json:"policy"`
	Test           string  `json:"test"`
	Instances      int     `json:"instances,omitempty"`
	Par            int     `json:"par,omitempty"`
	Events         uint64  `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	Metric         float64 `json:"metric"`
}

func (c benchCell) key() string {
	k := fmt.Sprintf("%s/%s/%s", c.Policy, c.Workload, c.Test)
	if c.Instances > 0 {
		k += fmt.Sprintf("[n=%d,par=%d]", c.Instances, c.Par)
	}
	return k
}

type benchEngine struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchReport struct {
	Schema string        `json:"schema"`
	Short  bool          `json:"short"`
	Engine []benchEngine `json:"engine"`
	Cells  []benchCell   `json:"cells"`
}

func main() {
	fs := flag.NewFlagSet("rofs-benchdiff", flag.ExitOnError)
	var (
		threshold  = fs.Float64("threshold", 0.15, "ns/event regression ratio that fails (0.15 = +15%)")
		allocThr   = fs.Float64("alloc-threshold", 0.02, "allocs/event regression ratio that fails")
		allocFloor = fs.Float64("alloc-floor", 0.05, "absolute allocs/event change below which the ratio check is skipped")
		reportOnly = fs.Bool("report-only", false, "print the diff but always exit zero")
	)
	fs.Parse(os.Args[1:])
	if fs.NArg() != 2 {
		fatal("usage: rofs-benchdiff [flags] OLD.json NEW.json")
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		fatal("%v", err)
	}

	var regressions []string

	// Engine microbenchmarks, by name.
	oldEng := make(map[string]benchEngine, len(oldRep.Engine))
	for _, e := range oldRep.Engine {
		oldEng[e.Name] = e
	}
	et := report.NewTable("Engine microbenchmarks",
		"Name", "Old ns/op", "New ns/op", "Delta", "Old allocs", "New allocs", "Verdict")
	for _, ne := range newRep.Engine {
		oe, ok := oldEng[ne.Name]
		if !ok {
			continue
		}
		d := ratio(oe.NsPerOp, ne.NsPerOp)
		verdict := verdictFor(d, *threshold)
		if ne.AllocsPerOp > oe.AllocsPerOp {
			verdict = "ALLOC-REGRESS"
		}
		if strings.HasSuffix(verdict, "REGRESS") {
			regressions = append(regressions,
				fmt.Sprintf("engine %s: %.2f -> %.2f ns/op (%+.1f%%), %d -> %d allocs/op",
					ne.Name, oe.NsPerOp, ne.NsPerOp, 100*d, oe.AllocsPerOp, ne.AllocsPerOp))
		}
		et.AddRow(ne.Name, fmt.Sprintf("%.2f", oe.NsPerOp), fmt.Sprintf("%.2f", ne.NsPerOp),
			fmt.Sprintf("%+.1f%%", 100*d), oe.AllocsPerOp, ne.AllocsPerOp, verdict)
	}
	et.Render(os.Stdout)

	// Simulation cells, by identity.
	oldCells := make(map[string]benchCell, len(oldRep.Cells))
	for _, c := range oldRep.Cells {
		oldCells[c.key()] = c
	}
	ct := report.NewTable("Simulation cells",
		"Cell", "Old ns/ev", "New ns/ev", "Delta", "Old all/ev", "New all/ev", "Verdict")
	matched := 0
	for _, nc := range newRep.Cells {
		oc, ok := oldCells[nc.key()]
		if !ok {
			continue
		}
		matched++
		delete(oldCells, nc.key())
		d := ratio(oc.NsPerEvent, nc.NsPerEvent)
		verdict := verdictFor(d, *threshold)
		switch {
		case math.Abs(nc.Metric-oc.Metric) > 1e-9:
			verdict = "METRIC-DRIFT"
			regressions = append(regressions,
				fmt.Sprintf("cell %s: simulated metric moved %.9f -> %.9f (the simulation changed)",
					nc.key(), oc.Metric, nc.Metric))
		case nc.Events != oc.Events:
			verdict = "EVENTS-DRIFT"
			regressions = append(regressions,
				fmt.Sprintf("cell %s: event count moved %d -> %d (the simulation changed)",
					nc.key(), oc.Events, nc.Events))
		case allocRegressed(oc.AllocsPerEvent, nc.AllocsPerEvent, *allocThr, *allocFloor):
			verdict = "ALLOC-REGRESS"
			regressions = append(regressions,
				fmt.Sprintf("cell %s: %.3f -> %.3f allocs/event", nc.key(),
					oc.AllocsPerEvent, nc.AllocsPerEvent))
		case verdict == "REGRESS":
			regressions = append(regressions,
				fmt.Sprintf("cell %s: %.1f -> %.1f ns/event (%+.1f%%)",
					nc.key(), oc.NsPerEvent, nc.NsPerEvent, 100*d))
		}
		ct.AddRow(nc.key(), fmt.Sprintf("%.1f", oc.NsPerEvent), fmt.Sprintf("%.1f", nc.NsPerEvent),
			fmt.Sprintf("%+.1f%%", 100*d),
			fmt.Sprintf("%.3f", oc.AllocsPerEvent), fmt.Sprintf("%.3f", nc.AllocsPerEvent), verdict)
	}
	ct.Render(os.Stdout)

	if matched == 0 {
		fatal("no cells in common between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	if len(oldCells) > 0 {
		var missing []string
		for k := range oldCells {
			missing = append(missing, k)
		}
		fmt.Printf("not re-measured (%d old cells without a new counterpart): %s\n",
			len(missing), strings.Join(missing, ", "))
	}

	if len(regressions) > 0 {
		fmt.Printf("\n%d regression(s) past thresholds (ns/event +%.0f%%, allocs/event +%.0f%%):\n",
			len(regressions), *threshold*100, *allocThr*100)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		if *reportOnly {
			fmt.Println("report-only mode: exiting zero anyway")
			return
		}
		os.Exit(1)
	}
	fmt.Printf("\nno regressions past thresholds across %d matched cell(s)\n", matched)
}

// ratio returns (new-old)/old, guarding zero baselines.
func ratio(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

func verdictFor(d, threshold float64) string {
	switch {
	case d > threshold:
		return "REGRESS"
	case d < -threshold:
		return "improved"
	default:
		return "ok"
	}
}

// allocRegressed applies the ratio threshold only to changes above the
// absolute floor: allocation counts near zero flip between 0.00 and
// 0.01 from GC timing alone, which is not a regression.
func allocRegressed(old, new, thr, floor float64) bool {
	if new-old <= floor {
		return false
	}
	return ratio(old, new) > thr
}

func load(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "rofs-bench/") {
		return nil, fmt.Errorf("%s: schema %q is not a rofs-bench artifact", path, rep.Schema)
	}
	return &rep, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
