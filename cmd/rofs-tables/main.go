// Command rofs-tables regenerates every table and figure of the paper's
// evaluation (and the §6 ablations), printing text tables and ASCII bar
// charts. See EXPERIMENTS.md for paper-vs-measured numbers.
//
// Usage:
//
//	rofs-tables -exp all -scale full          # the paper's configuration
//	rofs-tables -exp table3,fig6 -scale bench # quick reduced-scale runs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rofs/internal/disk"
	"rofs/internal/experiments"
	"rofs/internal/fault"
	"rofs/internal/metrics"
	"rofs/internal/prof"
	"rofs/internal/report"
	"rofs/internal/runner"
	"rofs/internal/sim"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// expFunc renders one experiment; the pool bounds its parallelism and
// caches results across experiments in the same invocation.
type expFunc func(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error

// experimentRegistry is the full table of renderable artifacts, in the
// paper's order.
func experimentRegistry() (map[string]expFunc, []string) {
	all := map[string]expFunc{
		"table1":   table1,
		"table2":   table2,
		"table3":   table3,
		"fig1":     fig1,
		"fig2":     fig2,
		"fig3":     fig3,
		"fig4":     fig4,
		"fig5":     fig5,
		"table4":   table4,
		"fig6":     fig6,
		"raid":     ablationRAID,
		"stripe":   ablationStripe,
		"mix":      ablationMix,
		"cluster":  ablationCluster,
		"sched":    ablationScheduler,
		"realloc":  ablationRealloc,
		"meta":     metadataTable,
		"skew":     ablationSkew,
		"freelist": ablationFreeList,
		"faults":   faultTable,
		"fleet":    fleetTable,
		"trace":    traceReplay,
		"aging":    agingTable,
		"compact":  compactionTable,
	}
	order := []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5",
		"table4", "fig6", "raid", "stripe", "mix", "cluster", "sched", "realloc", "meta",
		"skew", "freelist", "faults", "fleet", "trace", "aging", "compact"}
	return all, order
}

// tableFaults is the scenario the `faults` experiment runs, set from the
// fault flags in main (zero: experiments.DefaultFaultScenario).
var tableFaults fault.Scenario

// tableArrivals is the trace the `trace` experiment replays, loaded from
// -arrival-trace in main (nil: the built-in demo trace).
var tableArrivals *workload.Arrivals

// progress prints one per-run line to stderr as results land.
func progress(_ int, r runner.Result) {
	label := r.Spec.Label()
	switch {
	case r.Err != nil:
		fmt.Fprintf(os.Stderr, "  run %-42s FAILED: %v\n", label, r.Err)
	case r.Cached:
		fmt.Fprintf(os.Stderr, "  run %-42s cached (first run took %.2fs)\n", label, r.Wall.Seconds())
	default:
		st := r.Outcome.Stats
		evps := float64(st.Events) / r.Wall.Seconds()
		fmt.Fprintf(os.Stderr, "  run %-42s %6.2fs wall  %12.0f ms simulated  %9d events  %8.0f events/sec\n",
			label, r.Wall.Seconds(), st.SimMS, st.Events, evps)
	}
}

func main() {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiments: table1,table2,table3,fig1,fig2,fig3,fig4,fig5,table4,fig6,raid,stripe,mix,cluster,sched,realloc,meta,skew,freelist,faults,fleet,trace,aging,compact, or all")
		scaleFlag   = flag.String("scale", "bench", "full (the paper's 8-drive 2.8G array) or bench (reduced)")
		seedFlag    = flag.Int64("seed", 42, "simulation seed")
		jobsFlag    = flag.Int("jobs", runtime.GOMAXPROCS(0), "maximum simulations running at once")
		timeoutFlag = flag.Duration("timeout", 0, "overall deadline (e.g. 10m; 0 means none)")

		metricsFlag    = flag.String("metrics", "", "write one metrics bundle per grid cell into this directory")
		metricsFmtFlag = flag.String("metrics-format", "json", "bundle encoding: json | csv | prom")
		metricsIntFlag = flag.Float64("metrics-interval", metrics.DefaultIntervalMS, "timeline sampling interval (simulated ms)")

		cpuProfFlag  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfFlag  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		execTraceFlg = flag.String("exectrace", "", "write a runtime execution trace to this file")

		// Scenario knobs for the `faults` experiment (all other experiments
		// run fault-free; zero flags select the default scenario).
		faultFlags = fault.AddFlags(flag.CommandLine)

		// Trace file for the `trace` experiment (empty: a built-in demo
		// trace; see EXPERIMENTS.md for the file grammar).
		traceFlag = flag.String("arrival-trace", "", "open-loop trace file the `trace` experiment replays")
	)
	flag.Parse()
	if *traceFlag != "" {
		a, err := workload.LoadTraceFile(*traceFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rofs-tables: %v\n", err)
			os.Exit(2)
		}
		tableArrivals = a
	}
	tableFaults = faultFlags.Scenario()
	if err := tableFaults.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rofs-tables: %v\n", err)
		os.Exit(2)
	}

	stopProf, err := prof.Start(prof.Flags{CPUProfile: *cpuProfFlag, MemProfile: *memProfFlag, Trace: *execTraceFlg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rofs-tables: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "rofs-tables: %v\n", err)
		}
	}()

	var sc experiments.Scale
	switch *scaleFlag {
	case "full":
		sc = experiments.FullScale()
	case "bench":
		sc = experiments.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "rofs-tables: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	sc.Seed = *seedFlag

	// Ctrl-C / SIGTERM cancel the context: in-flight simulations stop at
	// their next operation, already-rendered tables stay on stdout, and
	// the process exits nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeoutFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeoutFlag)
		defer cancel()
	}
	// One pool for the whole invocation: configurations shared between
	// tables (e.g. the Table 4 / Figure 4 first-fit runs) simulate once.
	pool := runner.New(*jobsFlag)
	pool.OnResult = progress
	if *metricsFlag != "" {
		metricsFmt, err := metrics.ParseFormat(*metricsFmtFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rofs-tables: %v\n", err)
			os.Exit(2)
		}
		pool.MetricsIntervalMS = *metricsIntFlag
		// Bundles land as results do; cached repeats just rewrite the same
		// file with the same content.
		pool.OnResult = func(i int, r runner.Result) {
			progress(i, r)
			if r.Err != nil {
				return
			}
			if _, err := runner.SaveMetrics(*metricsFlag, metricsFmt, r.Spec.Label(), r.Outcome.Metrics); err != nil {
				fmt.Fprintf(os.Stderr, "rofs-tables: metrics: %v\n", err)
				os.Exit(1)
			}
		}
	}

	all, order := experimentRegistry()

	want := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		want = order
	}
	for _, name := range want {
		name = strings.TrimSpace(name)
		fn, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "rofs-tables: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("=== %s (scale=%s, seed=%d) ===\n", name, sc.Name, sc.Seed)
		if err := fn(ctx, pool, sc); err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "rofs-tables: interrupted during %s (%v); earlier experiments rendered\n",
					name, ctx.Err())
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "rofs-tables: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("    [%s in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}

func table1(_ context.Context, _ *runner.Pool, sc experiments.Scale) error {
	g := sc.Disk.Geometry
	t := report.NewTable("Table 1: Disk Drive Parameters and Simulator Values", "Parameter", "Value")
	t.AddRow("Number of disks", sc.Disk.NDisks)
	t.AddRow("Total capacity", units.Format(g.Capacity()*int64(sc.Disk.NDisks)))
	sys, err := disk.New(sc.Disk, &sim.Engine{})
	if err != nil {
		return err
	}
	t.AddRow("Maximum sustained throughput", fmt.Sprintf("%.1f M/sec", sys.MaxBandwidth()*1000/1e6))
	t.AddRow("Number of platters", g.TracksPerCylinder)
	t.AddRow("Number of cylinders", g.Cylinders)
	t.AddRow("Bytes per track", units.Format(g.BytesPerTrack))
	t.AddRow("Single track seek time", fmt.Sprintf("%.1f ms", g.SingleTrackSeekMS))
	t.AddRow("Seek incremental time", fmt.Sprintf("%.4f ms", g.SeekIncrementMS))
	t.AddRow("Single rotation time", fmt.Sprintf("%.2f ms", g.RotationMS))
	t.AddRow("Stripe unit", units.Format(sc.Disk.StripeUnitBytes))
	t.AddRow("Disk unit", units.Format(sc.Disk.UnitBytes))
	t.Render(os.Stdout)
	return nil
}

func table2(_ context.Context, _ *runner.Pool, sc experiments.Scale) error {
	for _, name := range []string{"TS", "TP", "SC"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return err
		}
		t := report.NewTable(fmt.Sprintf("Table 2 (%s workload): file type parameters", wl.Name),
			"Type", "Files", "Users", "Init", "RW", "Extend", "Trunc", "Alloc", "R%", "W%", "E%", "Del%")
		for _, ft := range wl.Types {
			t.AddRow(ft.Name, ft.Files, ft.Users, units.Format(ft.InitialBytes),
				units.Format(ft.RWSizeBytes), units.Format(ft.ExtendSize()),
				units.Format(ft.TruncateBytes), units.Format(ft.AllocSizeBytes),
				ft.ReadPct, ft.WritePct, ft.ExtendPct, ft.DeletePct)
		}
		t.Render(os.Stdout)
	}
	return nil
}

func table3(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	rows, err := experiments.Table3(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 3: Results for Buddy Allocation",
		"Workload", "Internal%", "External%", "Application%", "Sequential%")
	for _, r := range rows {
		t.AddRow(r.Workload, r.InternalPct, r.ExternalPct, r.AppPct, r.SeqPct)
	}
	t.Render(os.Stdout)
	return nil
}

func fig1(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.Figure1(ctx, pool, sc)
	if err != nil {
		return err
	}
	// The paper's panels: (a,c,e) internal and (b,d,f) external
	// fragmentation for SC, TP, TS.
	panels := []struct {
		letter, wl, what string
		pick             func(experiments.FragCell) float64
	}{
		{"1a", "SC", "internal", func(c experiments.FragCell) float64 { return c.InternalPct }},
		{"1b", "SC", "external", func(c experiments.FragCell) float64 { return c.ExternalPct }},
		{"1c", "TP", "internal", func(c experiments.FragCell) float64 { return c.InternalPct }},
		{"1d", "TP", "external", func(c experiments.FragCell) float64 { return c.ExternalPct }},
		{"1e", "TS", "internal", func(c experiments.FragCell) float64 { return c.InternalPct }},
		{"1f", "TS", "external", func(c experiments.FragCell) float64 { return c.ExternalPct }},
	}
	for _, p := range panels {
		chart := report.NewBarChart(
			fmt.Sprintf("Figure %s: %s %s fragmentation (%% of space)", p.letter, p.wl, p.what), 25, 50)
		group := ""
		for _, c := range cells {
			if c.Workload != p.wl {
				continue
			}
			// Group bars by block-size count, as the paper does.
			g := c.Policy[:8] // "rbuddy-N"
			if group != "" && g != group {
				chart.Gap()
			}
			group = g
			chart.Add(c.Policy, p.pick(c))
		}
		chart.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func fig2(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.Figure2(ctx, pool, sc)
	if err != nil {
		return err
	}
	panels := []struct {
		letter, wl, what string
		pick             func(experiments.PerfCell) float64
	}{
		{"2a", "SC", "application", func(c experiments.PerfCell) float64 { return c.AppPct }},
		{"2b", "SC", "sequential", func(c experiments.PerfCell) float64 { return c.SeqPct }},
		{"2c", "TP", "application", func(c experiments.PerfCell) float64 { return c.AppPct }},
		{"2d", "TP", "sequential", func(c experiments.PerfCell) float64 { return c.SeqPct }},
		{"2e", "TS", "application", func(c experiments.PerfCell) float64 { return c.AppPct }},
		{"2f", "TS", "sequential", func(c experiments.PerfCell) float64 { return c.SeqPct }},
	}
	for _, p := range panels {
		chart := report.NewBarChart(
			fmt.Sprintf("Figure %s: %s %s performance (%% of max throughput)", p.letter, p.wl, p.what), 100, 50)
		group := ""
		for _, c := range cells {
			if c.Workload != p.wl {
				continue
			}
			g := c.Policy[:8]
			if group != "" && g != group {
				chart.Gap()
			}
			group = g
			chart.Add(c.Policy, p.pick(c))
		}
		chart.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func fig3(ctx context.Context, pool *runner.Pool, _ experiments.Scale) error {
	res, err := experiments.Figure3(ctx, pool)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: contiguous allocation vs the grow factor (sizes 1K/8K/64K)")
	for _, r := range res {
		fmt.Printf("  grow factor %g: first 64K block at %dK allocated; layout %v",
			r.GrowFactor, r.FileKB, r.Extents)
		if r.Discontiguous {
			fmt.Printf("  -> discontiguous, %dK hole skipped (the Figure 3 seek)", r.GapKB)
		}
		fmt.Println()
	}
	return nil
}

func fig4(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.Figure4(ctx, pool, sc)
	if err != nil {
		return err
	}
	renderFrag("Figure 4: Extent-based fragmentation", cells)
	return nil
}

func fig5(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.Figure5(ctx, pool, sc)
	if err != nil {
		return err
	}
	renderPerf("Figure 5: Extent-based performance", cells)
	return nil
}

func table4(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	rows, err := experiments.Table4(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 4: Average number of extents per file (first fit)",
		"Ranges", "SC", "TP", "TS")
	byRange := map[int]map[string]float64{}
	for _, r := range rows {
		if byRange[r.Ranges] == nil {
			byRange[r.Ranges] = map[string]float64{}
		}
		byRange[r.Ranges][r.Workload] = r.ExtentsPerFile
	}
	for n := 1; n <= 5; n++ {
		t.AddRow(n, byRange[n]["SC"], byRange[n]["TP"], byRange[n]["TS"])
	}
	t.Render(os.Stdout)
	return nil
}

func fig6(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.Figure6(ctx, pool, sc)
	if err != nil {
		return err
	}
	for _, panel := range []struct {
		title string
		pick  func(experiments.PerfCell) float64
	}{
		{"Figure 6a: Sequential performance (% of max throughput)", func(c experiments.PerfCell) float64 { return c.SeqPct }},
		{"Figure 6b: Application performance (% of max throughput)", func(c experiments.PerfCell) float64 { return c.AppPct }},
	} {
		chart := report.NewBarChart(panel.title, 100, 50)
		last := ""
		for _, c := range cells {
			if c.Workload != last && last != "" {
				chart.Gap()
			}
			last = c.Workload
			chart.Add(fmt.Sprintf("%s %s", c.Workload, c.Policy), panel.pick(c))
		}
		chart.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func ablationRAID(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	for _, wl := range []string{"TP", "SC"} {
		cells, err := experiments.AblationRAID(ctx, pool, sc, wl)
		if err != nil {
			return err
		}
		t := report.NewTable(fmt.Sprintf("Ablation A1 (%s): disk-system layouts under rbuddy-5-g1-clus", wl),
			"Layout", "Application%", "Sequential%")
		for _, c := range cells {
			t.AddRow(c.Name(), c.AppPct, c.SeqPct)
		}
		t.Render(os.Stdout)
	}
	return nil
}

func ablationStripe(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	for _, wl := range []string{"SC", "TS"} {
		cells, err := experiments.AblationStripeUnit(ctx, pool, sc, wl)
		if err != nil {
			return err
		}
		t := report.NewTable(fmt.Sprintf("Ablation A2 (%s): stripe-unit sensitivity", wl),
			"Stripe unit", "Application%", "Sequential%")
		for _, c := range cells {
			t.AddRow(units.Format(c.StripeBytes), c.AppPct, c.SeqPct)
		}
		t.Render(os.Stdout)
	}
	return nil
}

func ablationMix(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.AblationFileMix(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A3: fragmentation vs large-file space share (TS variant)",
		"Large share", "Policy", "Internal%", "External%")
	for _, c := range cells {
		t.AddRow(fmt.Sprintf("%.0f%%", c.LargeShare*100), c.Policy, c.InternalPct, c.ExternalPct)
	}
	t.Render(os.Stdout)
	return nil
}

func ablationCluster(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.AblationClustering(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A4: clustering × grow factor on TS (rbuddy, 5 sizes)",
		"Clustered", "Grow", "Sequential%", "Internal%")
	for _, c := range cells {
		t.AddRow(c.Clustered, c.GrowFactor, c.SeqPct, c.InternalPct)
	}
	t.Render(os.Stdout)
	return nil
}

func ablationScheduler(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	for _, wl := range []string{"TP", "SC"} {
		cells, err := experiments.AblationScheduler(ctx, pool, sc, wl)
		if err != nil {
			return err
		}
		t := report.NewTable(fmt.Sprintf("Ablation A5 (%s): drive queue discipline", wl),
			"Scheduler", "Application%", "Sequential%", "Mean lat (ms)", "P95 lat (ms)")
		for _, c := range cells {
			t.AddRow(c.Scheduler.String(), c.AppPct, c.SeqPct, c.MeanLatencyMS, c.P95LatencyMS)
		}
		t.Render(os.Stdout)
	}
	return nil
}

func ablationRealloc(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.AblationRealloc(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A6: Koch's nightly reallocator on the buddy system",
		"Workload", "Int% before", "Int% after", "Ext% before", "Ext% after", "Compacted", "Failed")
	for _, c := range cells {
		t.AddRow(c.Workload, c.InternalBefore, c.After, c.ExternalBefore, c.ExternalAfter,
			c.Compacted, c.Failed)
	}
	t.Render(os.Stdout)
	return nil
}

func fleetTable(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.FleetTable(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Cluster mode (TP app, open-loop): fleet scaling, routing, admission",
		"Instances", "Routing", "Admission", "Rate/s", "Throughput%", "Mean lat (ms)", "P95 (ms)", "Reject%", "Skew")
	for _, c := range cells {
		t.AddRow(c.Instances, c.Routing, c.Admission, c.RatePerSec,
			fmt.Sprintf("%.2f", c.Percent), fmt.Sprintf("%.2f", c.MeanLatencyMS),
			fmt.Sprintf("%.0f", c.P95LatencyMS), fmt.Sprintf("%.2f", c.RejectPct),
			fmt.Sprintf("%.3f", c.UtilSkew))
	}
	t.Render(os.Stdout)
	return nil
}

func metadataTable(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.MetadataTable(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Metadata footprint after the allocation test ([STON81] comparison)",
		"Workload", "Policy", "Files", "Descriptors", "Metadata", "% of data")
	for _, c := range cells {
		t.AddRow(c.Workload, c.Policy, c.Files, c.Descriptors,
			units.Format(c.MetaBytes), fmt.Sprintf("%.2f", c.MetaPctOfData))
	}
	t.Render(os.Stdout)
	return nil
}

func ablationSkew(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.AblationSkew(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A7 (TP): hot-relation skew (Zipf s)",
		"HotSkew", "Application%", "Mean lat (ms)")
	for _, c := range cells {
		label := "uniform"
		if c.HotSkew > 0 {
			label = fmt.Sprintf("%.1f", c.HotSkew)
		}
		t.AddRow(label, c.AppPct, c.MeanLatencyMS)
	}
	t.Render(os.Stdout)
	return nil
}

func ablationFreeList(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	cells, err := experiments.AblationFreeList(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A8 (TS): fixed-block free-list aging",
		"Free list", "Sequential%", "Application%")
	for _, c := range cells {
		t.AddRow(c.Policy, c.SeqPct, c.AppPct)
	}
	t.Render(os.Stdout)
	return nil
}

func traceReplay(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	rows, err := experiments.TraceTable(ctx, pool, sc, tableArrivals)
	if err != nil {
		return err
	}
	src := "built-in demo trace"
	if tableArrivals != nil {
		src = fmt.Sprintf("%d-op trace", len(tableArrivals.Trace))
	}
	t := report.NewTable(fmt.Sprintf("Trace replay (TP, open-loop %s): per-policy throughput and latency", src),
		"Policy", "Ops", "Throughput%", "Mean lat (ms)", "P95 lat (ms)")
	for _, r := range rows {
		t.AddRow(r.Policy, r.Ops, fmt.Sprintf("%.2f", r.Percent),
			fmt.Sprintf("%.2f", r.MeanLatencyMS), fmt.Sprintf("%.0f", r.P95LatencyMS))
	}
	t.Render(os.Stdout)
	return nil
}

func agingTable(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	rows, err := experiments.AgingTable(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Aging: free-space decay under multi-day TS churn",
		"Policy", "Sim time", "Util%", "Int%", "Ext%", "Free frags", "Largest free", "Files", "Mean file", "Alloc fails")
	for _, r := range rows {
		n := len(r.Result.Samples)
		if n == 0 {
			continue
		}
		for _, idx := range []int{0, n / 4, n / 2, 3 * n / 4, n - 1} {
			s := r.Result.Samples[idx]
			t.AddRow(r.Policy, fmt.Sprintf("%.1fh", s.SimMS/3.6e6),
				fmt.Sprintf("%.1f", s.Utilization*100),
				fmt.Sprintf("%.2f", s.InternalPct), fmt.Sprintf("%.2f", s.ExternalPct),
				s.FreeFragments, s.LargestFreeUnits, s.Files,
				units.Format(int64(s.MeanFileBytes)), s.AllocFails)
		}
	}
	t.Render(os.Stdout)
	return nil
}

func compactionTable(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	rows, err := experiments.CompactionTable(ctx, pool, sc)
	if err != nil {
		return err
	}
	t := report.NewTable("Compaction (TP app, rbuddy-5-g1-clus): log-structured overlay cost",
		"Overlay", "Throughput%", "Mean lat (ms)", "P95 lat (ms)", "Segments", "Merges", "Merged", "Write amp")
	for _, r := range rows {
		if r.Compaction == nil {
			t.AddRow(r.Overlay, fmt.Sprintf("%.2f", r.Percent),
				fmt.Sprintf("%.2f", r.MeanLatencyMS), fmt.Sprintf("%.0f", r.P95LatencyMS),
				"-", "-", "-", "-")
			continue
		}
		c := r.Compaction
		t.AddRow(r.Overlay, fmt.Sprintf("%.2f", r.Percent),
			fmt.Sprintf("%.2f", r.MeanLatencyMS), fmt.Sprintf("%.0f", r.P95LatencyMS),
			c.Segments, c.Merges, units.Format(c.MergeWriteBytes), fmt.Sprintf("%.2fx", c.WriteAmp))
	}
	t.Render(os.Stdout)
	return nil
}

func faultTable(ctx context.Context, pool *runner.Pool, sc experiments.Scale) error {
	for _, wl := range []string{"TP", "TS"} {
		cells, err := experiments.FaultTable(ctx, pool, sc, wl, tableFaults)
		if err != nil {
			return err
		}
		t := report.NewTable(fmt.Sprintf("Fault injection (%s): RAID-5 throughput, healthy vs failure+rebuild", wl),
			"Policy", "Healthy%", "Faulted%", "Degraded (s)", "Rebuilt", "Transient", "Retries", "Permanent")
		for _, c := range cells {
			rebuilt := "incomplete"
			if c.RebuildDone {
				rebuilt = units.Format(c.RebuildBytes)
			}
			t.AddRow(c.Policy, c.HealthyPct, c.FaultedPct,
				fmt.Sprintf("%.1f", c.DegradedMS/1000), rebuilt,
				c.TransientErrors, c.Retries, c.PermanentErrors)
		}
		t.Render(os.Stdout)
	}
	return nil
}

func renderFrag(title string, cells []experiments.FragCell) {
	t := report.NewTable(title, "Workload", "Policy", "Internal%", "External%")
	for _, c := range cells {
		t.AddRow(c.Workload, c.Policy, c.InternalPct, c.ExternalPct)
	}
	t.Render(os.Stdout)
}

func renderPerf(title string, cells []experiments.PerfCell) {
	t := report.NewTable(title, "Workload", "Policy", "Application%", "Sequential%")
	for _, c := range cells {
		t.AddRow(c.Workload, c.Policy, c.AppPct, c.SeqPct)
	}
	t.Render(os.Stdout)
}
