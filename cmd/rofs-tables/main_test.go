package main

import (
	"context"
	"os"
	"testing"

	"rofs/internal/experiments"
	"rofs/internal/runner"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	all, order := experimentRegistry()
	if len(all) != len(order) {
		t.Fatalf("registry has %d entries, order lists %d", len(all), len(order))
	}
	for _, name := range order {
		if all[name] == nil {
			t.Errorf("experiment %q in order but not registered", name)
		}
	}
	// Every table and figure of the paper's evaluation must be present.
	for _, required := range []string{"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		if _, ok := all[required]; !ok {
			t.Errorf("paper artifact %q missing from the registry", required)
		}
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	// The static and analytic experiments run in microseconds; exercise
	// them end to end (output goes to stdout, which `go test` tolerates).
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	ctx := context.Background()
	pool := runner.New(0)
	sc := experiments.BenchScale()
	for _, fn := range []expFunc{table1, table2, fig3} {
		if err := fn(ctx, pool, sc); err != nil {
			t.Errorf("experiment failed: %v", err)
		}
	}
}
