package main

import (
	"context"
	"os"
	"testing"

	"rofs/internal/experiments"
	"rofs/internal/runner"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	all, order := experimentRegistry()
	if len(all) != len(order) {
		t.Fatalf("registry has %d entries, order lists %d", len(all), len(order))
	}
	for _, name := range order {
		if all[name] == nil {
			t.Errorf("experiment %q in order but not registered", name)
		}
	}
	// Every table and figure of the paper's evaluation must be present.
	for _, required := range []string{"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		if _, ok := all[required]; !ok {
			t.Errorf("paper artifact %q missing from the registry", required)
		}
	}
}

// TestEveryRegisteredExperimentRuns drives each -exp name end to end —
// registry-driven, so a newly registered experiment is exercised without
// anyone remembering to add a test. It runs in -short mode too, at a
// reduced simulated-time cap to keep the whole sweep in test budget.
func TestEveryRegisteredExperimentRuns(t *testing.T) {
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	ctx := context.Background()
	pool := runner.New(0)
	sc := experiments.BenchScale()
	sc.MaxSimMS = 8_000
	all, order := experimentRegistry()
	for _, name := range order {
		fn := all[name]
		t.Run(name, func(t *testing.T) {
			if err := fn(ctx, pool, sc); err != nil {
				t.Errorf("experiment %q failed: %v", name, err)
			}
		})
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	// The static and analytic experiments run in microseconds; exercise
	// them end to end (output goes to stdout, which `go test` tolerates).
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	ctx := context.Background()
	pool := runner.New(0)
	sc := experiments.BenchScale()
	for _, fn := range []expFunc{table1, table2, fig3} {
		if err := fn(ctx, pool, sc); err != nil {
			t.Errorf("experiment failed: %v", err)
		}
	}
}
