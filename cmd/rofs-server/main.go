// Command rofs-server serves simulations over HTTP: POST a run request,
// stream its progress and final metrics bundle over SSE, scrape /metrics
// for server and pool saturation. See EXPERIMENTS.md "Serving simulations"
// for the API reference.
//
// Usage:
//
//	rofs-server -addr :8080 -jobs 8 -queue 32
//	rofs-server -addr 127.0.0.1:0 -addr-file /tmp/rofs.addr   # scripts
//	rofs-server -access-log access.jsonl -pprof-addr 127.0.0.1:6060
//
// SIGTERM (or SIGINT) drains gracefully: admission stops (readyz goes
// 503), in-flight runs get -drain to finish, stragglers are canceled,
// and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr registers these handlers on DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rofs/internal/ckpt"
	"rofs/internal/metrics"
	"rofs/internal/prof"
	"rofs/internal/service"
	"rofs/internal/store"
	"rofs/internal/units"
)

func main() {
	var (
		addrFlag     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks one)")
		addrFileFlag = flag.String("addr-file", "", "write the bound address to this file once listening")
		jobsFlag     = flag.Int("jobs", 0, "maximum simulations running at once (0: one per CPU)")
		queueFlag    = flag.Int("queue", 16, "admission queue bound; beyond it submissions get 503 + Retry-After")
		runTimeout   = flag.Duration("run-timeout", 0, "default per-run wall-time cap (0: none; requests may set their own)")
		drainFlag    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before in-flight runs are canceled")

		metricsIntFlag = flag.Float64("metrics-interval", metrics.DefaultIntervalMS,
			"per-run timeline sampling interval (simulated ms; negative disables run bundles)")

		storeDirFlag = flag.String("store-dir", "",
			"persist results to this directory; identical submissions after a restart are served from it (empty disables)")
		storeMaxFlag = flag.String("store-max-bytes", "256M",
			"result-store byte budget; least recently used records beyond it are evicted (K/M/G suffixes)")
		cacheEntriesFlag = flag.Int("cache-entries", 0,
			"bound the in-memory result cache to this many entries, LRU-evicted (0: unbounded)")
		ckptDirFlag = flag.String("ckpt-dir", "",
			"persist run checkpoints to this directory; armed runs resume across restarts (empty disables)")

		accessLogFlag = flag.String("access-log", "",
			"write one JSON access record per request to this file (- for stderr; empty disables)")
		pprofFlag = flag.String("pprof-addr", "",
			"serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")

		cpuProfFlag  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfFlag  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		execTraceFlg = flag.String("exectrace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(prof.Flags{CPUProfile: *cpuProfFlag, MemProfile: *memProfFlag, Trace: *execTraceFlg})
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "rofs-server: %v\n", err)
		}
	}()

	var accessLog io.Writer
	var accessFile *os.File
	switch *accessLogFlag {
	case "":
	case "-":
		accessLog = os.Stderr
	default:
		accessFile, err = os.OpenFile(*accessLogFlag, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("%v", err)
		}
		defer accessFile.Close()
		accessLog = accessFile
	}

	// The pprof endpoint binds its own listener (usually loopback-only),
	// so profiling exposure is independent of the serving address and off
	// unless asked for. DefaultServeMux carries the net/http/pprof
	// handlers via its package init.
	if *pprofFlag != "" {
		pln, err := net.Listen("tcp", *pprofFlag)
		if err != nil {
			fatal("pprof listener: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rofs-server: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rofs-server: pprof server: %v\n", err)
			}
		}()
	}

	var resultStore *store.Store
	if *storeDirFlag != "" {
		maxBytes, err := parseSize(*storeMaxFlag)
		if err != nil {
			fatal("-store-max-bytes: %v", err)
		}
		if resultStore, err = store.Open(*storeDirFlag, store.Options{MaxBytes: maxBytes}); err != nil {
			fatal("%v", err)
		}
		defer resultStore.Close()
		st := resultStore.Stats()
		fmt.Fprintf(os.Stderr, "rofs-server: result store %s: %d records, %d live bytes (budget %d)\n",
			*storeDirFlag, st.Records, st.LiveBytes, maxBytes)
	}
	var ckptMgr *ckpt.Manager
	if *ckptDirFlag != "" {
		var err error
		if ckptMgr, err = ckpt.NewManager(*ckptDirFlag); err != nil {
			fatal("%v", err)
		}
	}

	svc := service.New(service.Options{
		Jobs:              *jobsFlag,
		QueueDepth:        *queueFlag,
		RunTimeout:        *runTimeout,
		MetricsIntervalMS: *metricsIntFlag,
		AccessLog:         accessLog,
		Store:             resultStore,
		CacheEntries:      *cacheEntriesFlag,
		Ckpt:              ckptMgr,
	})

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatal("%v", err)
	}
	addr := ln.Addr().String()
	if *addrFileFlag != "" {
		if err := os.WriteFile(*addrFileFlag, []byte(addr+"\n"), 0o644); err != nil {
			fatal("%v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "rofs-server: listening on %s (jobs=%d queue=%d)\n",
		addr, svcJobs(*jobsFlag), *queueFlag)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fatal("%v", err)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(os.Stderr, "rofs-server: draining (budget %s)\n", *drainFlag)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rofs-server: drain deadline hit; canceled remaining runs\n")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "rofs-server: shutdown: %v\n", err)
	}

	st := svc.Pool().Stats()
	fmt.Fprintf(os.Stderr,
		"rofs-server: served %d runs (%d simulated, %d cached, %d disk hits, %d failed), peak in-flight %d, peak queue %d\n",
		st.Submitted, st.Simulated, st.Cached, st.DiskHits, st.Failed, st.PeakInFlight, st.PeakQueueDepth)
	if resultStore != nil {
		ss := resultStore.Stats()
		fmt.Fprintf(os.Stderr, "rofs-server: store: %d records, %d live bytes, %d puts, %d evictions, %d compactions\n",
			ss.Records, ss.LiveBytes, ss.Puts, ss.Evictions, ss.Compactions)
	}
}

// svcJobs mirrors the service's default for the startup log line.
func svcJobs(jobs int) int {
	if jobs > 0 {
		return jobs
	}
	return runtime.GOMAXPROCS(0)
}

// parseSize reads "256M"-style byte sizes (K/M/G suffixes).
func parseSize(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = units.KB, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = units.MB, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = units.GB, strings.TrimSuffix(s, "G")
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("cannot parse size %q", s)
	}
	return n * mult, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-server: "+format+"\n", args...)
	os.Exit(1)
}
