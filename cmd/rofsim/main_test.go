package main

import (
	"testing"

	"rofs/internal/core"
	"rofs/internal/units"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"4K", 4 * units.KB, true},
		{"4k", 4 * units.KB, true},
		{"16K", 16 * units.KB, true},
		{"1M", units.MB, true},
		{"2G", 2 * units.GB, true},
		{"512", 512, true},
		{" 24K ", 24 * units.KB, true},
		{"", 0, false},
		{"K", 0, false},
		{"x4K", 0, false},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseSize(%q) accepted", c.in)
		}
	}
}

func TestStability(t *testing.T) {
	if got := stability(core.PerfResult{Stable: true, Windows: 3}); got != "stabilized after 3 windows" {
		t.Errorf("stability = %q", got)
	}
	if got := stability(core.PerfResult{}); got != "time-capped; overall average" {
		t.Errorf("stability = %q", got)
	}
}
