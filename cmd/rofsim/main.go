// Command rofsim runs a single simulation: one allocation policy, one
// workload, one test — the building block the paper's evaluation grids
// are made of.
//
// Examples:
//
//	rofsim -policy rbuddy -sizes 5 -grow 1 -clustered -workload TS -test alloc
//	rofsim -policy extent -fit best -ranges 3 -workload TP -test seq -scale full
//	rofsim -policy fixed -block 16K -workload SC -test app
//	rofsim -policy buddy -workload SC -test app -layout raid5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rofs/internal/alloc/extent"
	"rofs/internal/ckpt"
	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/experiments"
	"rofs/internal/fault"
	"rofs/internal/metrics"
	"rofs/internal/prof"
	"rofs/internal/units"
	"rofs/internal/workload"
)

func main() {
	var (
		policyFlag   = flag.String("policy", "rbuddy", "buddy | rbuddy | extent | fixed")
		workloadFlag = flag.String("workload", "TS", "TS | TP | SC")
		testFlag     = flag.String("test", "alloc", "alloc | app | seq | aging")
		scaleFlag    = flag.String("scale", "bench", "full | bench")
		seedFlag     = flag.Int64("seed", 42, "simulation seed")

		// rbuddy knobs
		sizesFlag = flag.Int("sizes", 5, "rbuddy: number of block sizes (2-5)")
		growFlag  = flag.Float64("grow", 1, "rbuddy: grow-policy multiplier (fractions allowed, e.g. 1.5)")
		clustFlag = flag.Bool("clustered", true, "rbuddy: use 32M bookkeeping regions")

		// extent knobs
		fitFlag    = flag.String("fit", "first", "extent: first | best")
		rangesFlag = flag.Int("ranges", 3, "extent: number of extent-size ranges (1-5)")

		// fixed knob
		blockFlag = flag.String("block", "4K", "fixed: block size (4K or 16K)")

		// custom workloads
		wlFileFlag = flag.String("workload-file", "", "JSON workload definition (overrides -workload)")
		dumpFlag   = flag.String("dump-workload", "", "print a built-in workload as JSON and exit (TS|TP|SC)")

		// disk knobs
		disksFlag  = flag.Int("disks", 0, "override number of drives")
		layoutFlag = flag.String("layout", "striped", "striped | mirrored | raid5 | parity")
		stripeFlag = flag.String("stripe", "", "override stripe unit, e.g. 24K")
		maxSimFlag = flag.Float64("max-sim", 0, "override simulated-time cap (ms)")
		traceFlag  = flag.String("trace", "", "write a tab-separated event trace to this file")

		// metrics bundle (see EXPERIMENTS.md "Metrics and spans")
		metricsFlag    = flag.String("metrics", "", "write the run's metrics bundle to this file (- for stdout)")
		metricsFmtFlag = flag.String("metrics-format", "json", "bundle encoding: json | csv | prom")
		metricsIntFlag = flag.Float64("metrics-interval", metrics.DefaultIntervalMS, "timeline sampling interval (simulated ms)")

		// Profiling: -trace is taken by the simulator's event trace; every
		// command spells the runtime execution trace -exectrace.
		cpuProfFlag  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfFlag  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		execTraceFlg = flag.String("exectrace", "", "write a runtime execution trace to this file")

		// checkpoint/resume knobs (see EXPERIMENTS.md "Persistent results
		// and checkpoint/resume")
		ckptDirFlag   = flag.String("checkpoint", "", "persist run checkpoints to this directory (app/seq tests)")
		ckptEveryFlag = flag.Float64("checkpoint-every", 0, "checkpoint boundary interval (simulated ms; 0 disables)")
		resumeFlag    = flag.Bool("resume", false, "resume from an existing checkpoint in -checkpoint (default: start fresh)")

		// fault-scenario knobs (see EXPERIMENTS.md "Fault injection")
		faultFlags = fault.AddFlags(flag.CommandLine)

		// cluster + open-loop knobs (see EXPERIMENTS.md "Cluster mode")
		clusterFlags = cluster.AddFlags(flag.CommandLine)
	)
	flag.Parse()

	stopProf, perr := prof.Start(prof.Flags{CPUProfile: *cpuProfFlag, MemProfile: *memProfFlag, Trace: *execTraceFlg})
	if perr != nil {
		fatal("%v", perr)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "rofsim: %v\n", err)
		}
	}()

	if *dumpFlag != "" {
		wl, err := workload.ByName(*dumpFlag)
		if err != nil {
			fatal("%v", err)
		}
		if err := workload.ToJSON(os.Stdout, wl); err != nil {
			fatal("%v", err)
		}
		return
	}

	sc := experiments.BenchScale()
	if *scaleFlag == "full" {
		sc = experiments.FullScale()
	}
	sc.Seed = *seedFlag
	if *maxSimFlag > 0 {
		sc.MaxSimMS = *maxSimFlag
	}
	if *disksFlag > 0 {
		sc.Disk.NDisks = *disksFlag
	}
	switch *layoutFlag {
	case "striped":
		sc.Disk.Layout = disk.Striped
	case "mirrored":
		sc.Disk.Layout = disk.Mirrored
	case "raid5":
		sc.Disk.Layout = disk.RAID5
	case "parity":
		sc.Disk.Layout = disk.ParityStriped
	default:
		fatal("unknown layout %q", *layoutFlag)
	}
	if *stripeFlag != "" {
		n, err := parseSize(*stripeFlag)
		if err != nil {
			fatal("bad stripe unit: %v", err)
		}
		sc.Disk.StripeUnitBytes = n
	}

	var wl workload.Workload
	var err error
	if *wlFileFlag != "" {
		f, ferr := os.Open(*wlFileFlag)
		if ferr != nil {
			fatal("%v", ferr)
		}
		wl, err = workload.FromJSON(f)
		f.Close()
	} else {
		wl, err = sc.Workload(*workloadFlag)
	}
	if err != nil {
		fatal("%v", err)
	}
	if a, aerr := clusterFlags.Arrivals(); aerr != nil {
		fatal("%v", aerr)
	} else if a != nil {
		wl.Arrivals = a
	}
	if cc := clusterFlags.Compaction(); cc != nil {
		wl.Compact = cc
	}
	cc := clusterFlags.Config()
	if err := cc.Validate(); err != nil {
		fatal("%v", err)
	}

	var spec core.PolicySpec
	switch *policyFlag {
	case "buddy":
		spec = core.Buddy()
	case "rbuddy":
		spec = core.RBuddy(*sizesFlag, *growFlag, *clustFlag)
	case "extent":
		fit := extent.FirstFit
		if strings.HasPrefix(*fitFlag, "b") {
			fit = extent.BestFit
		}
		ranges, err := sc.ExtentRanges(wl.Name, *rangesFlag)
		if err != nil {
			fatal("%v", err)
		}
		spec = core.Extent(fit, ranges)
	case "fixed":
		n, err := parseSize(*blockFlag)
		if err != nil {
			fatal("bad block size: %v", err)
		}
		spec = core.Fixed(n)
	default:
		fatal("unknown policy %q", *policyFlag)
	}

	cfg := sc.Config(spec, wl)
	cfg.Faults = faultFlags.Scenario()
	if err := cfg.Faults.Validate(); err != nil {
		fatal("%v", err)
	}
	if *traceFlag != "" {
		tf, err := os.Create(*traceFlag)
		if err != nil {
			fatal("%v", err)
		}
		defer tf.Close()
		cfg.TraceWriter = tf
	}
	// Arm verified checkpoint/resume: the canonical runner.Spec key names
	// the run (grid included), so an identical re-invocation with -resume
	// finds its saved boundary and finishes byte-identical to an
	// uninterrupted run.
	var ckptMgr *ckpt.Manager
	var ckptKey string
	if *ckptEveryFlag > 0 {
		var kind core.TestKind
		switch *testFlag {
		case "app":
			kind = core.Application
		case "seq":
			kind = core.Sequential
		default:
			fatal("-checkpoint-every requires -test app or seq, not %q", *testFlag)
		}
		if *ckptDirFlag == "" {
			fatal("-checkpoint-every requires -checkpoint DIR")
		}
		sp := sc.Spec(spec, wl, kind)
		sp.Faults = cfg.Faults
		sp.Cluster = cc
		sp.CheckpointEveryMS = *ckptEveryFlag
		ckptKey = sp.Key()
		mgr, merr := ckpt.NewManager(*ckptDirFlag)
		if merr != nil {
			fatal("%v", merr)
		}
		if !*resumeFlag {
			mgr.Clear(ckptKey)
		}
		hook, herr := mgr.Arm(*ckptEveryFlag, ckptKey, sp.Label())
		if herr != nil {
			fatal("%v", herr)
		}
		switch {
		case hook.Resume != nil:
			fmt.Fprintf(os.Stderr, "rofsim: resuming from checkpoint seq %d at %.0f ms (verified replay)\n",
				hook.Resume.Seq, hook.Resume.SimMS)
		case *resumeFlag:
			fmt.Fprintf(os.Stderr, "rofsim: no checkpoint to resume; running from scratch\n")
		}
		cfg.Checkpoint = hook
		ckptMgr = mgr
	}

	metricsFmt, err := metrics.ParseFormat(*metricsFmtFlag)
	if err != nil {
		fatal("%v", err)
	}
	if *metricsFlag != "" {
		cfg.Metrics = metrics.New(*metricsIntFlag)
	}
	// With the bundle going to stdout, the human report moves to stderr so
	// the two streams stay separable.
	rpt := io.Writer(os.Stdout)
	if *metricsFlag == "-" {
		rpt = os.Stderr
	}
	fmt.Fprintf(rpt, "rofsim: policy=%s workload=%s test=%s scale=%s layout=%v seed=%d\n",
		spec.Name(), wl.Name, *testFlag, sc.Name, sc.Disk.Layout, sc.Seed)

	switch *testFlag {
	case "alloc":
		res, err := core.RunAllocation(cfg)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(rpt, "  disk filled:            %v (after %d operations)\n", res.Filled, res.Ops)
		fmt.Fprintf(rpt, "  internal fragmentation: %.2f%% of allocated space\n", res.InternalPct)
		fmt.Fprintf(rpt, "  external fragmentation: %.2f%% of total space\n", res.ExternalPct)
		if res.ExtentsPerFile > 0 {
			fmt.Fprintf(rpt, "  extents per file:       %.1f\n", res.ExtentsPerFile)
		}
	case "app", "seq":
		var res core.PerfResult
		switch {
		case cc.Enabled():
			if *testFlag != "app" {
				fatal("cluster mode requires -test app")
			}
			var out core.Outcome
			out, err = cluster.Run(cfg, cc, core.Application)
			res = out.Perf
		case *testFlag == "app":
			res, err = core.RunApplication(cfg)
		default:
			res, err = core.RunSequential(cfg)
		}
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(rpt, "  throughput:   %.1f%% of maximum (%s)\n", res.Percent, stability(res))
		fmt.Fprintf(rpt, "  simulated:    %.1f s, %d operations, %s moved\n",
			res.SimMS/1000, res.Ops, units.Format(res.Bytes))
		fmt.Fprintf(rpt, "  op latency:   %.1f ms mean, p95 <= %.0f ms\n",
			res.MeanLatencyMS, res.P95LatencyMS)
		if res.AllocFails > 0 {
			fmt.Fprintf(rpt, "  disk-full conditions logged: %d\n", res.AllocFails)
		}
		if fr := res.Faults; fr != nil {
			fmt.Fprintf(rpt, "  faults:       %d drive failure(s), %d transient error(s), %d retries, %d permanent\n",
				fr.DriveFailures, fr.TransientErrors, fr.Retries, fr.PermanentErrors)
			if fr.DegradedMS > 0 {
				fmt.Fprintf(rpt, "  degraded:     %.1f s of simulated time\n", fr.DegradedMS/1000)
			}
			switch {
			case fr.Rebuilds > 0:
				fmt.Fprintf(rpt, "  rebuild completed: %.1f s after failure (%s reconstructed)\n",
					fr.RebuildMS/1000, units.Format(fr.RebuildBytes))
			case fr.DegradedAtEnd:
				fmt.Fprintf(rpt, "  rebuild incomplete: still degraded at end of run\n")
			}
			if fr.RetriedOps > 0 {
				fmt.Fprintf(rpt, "  retry delay:  p50 <= %.0f ms, p95 <= %.0f ms over %d retried requests\n",
					fr.RetryP50MS, fr.RetryP95MS, fr.RetriedOps)
			}
		}
		if cr := res.Cluster; cr != nil {
			admit := cr.Admission
			if admit == "" {
				admit = "none"
			}
			fmt.Fprintf(rpt, "  cluster:      %d instances, routing=%s admission=%s\n",
				cr.Instances, cr.Routing, admit)
			if cr.Arrivals > 0 {
				fmt.Fprintf(rpt, "  admission:    %d arrivals, %d admitted, %d rejected (%.1f%%)\n",
					cr.Arrivals, cr.Admitted, cr.Rejected, cr.RejectPct)
			}
			fmt.Fprintf(rpt, "  balance:      utilization skew %.3f (1.0 = perfectly even)\n", cr.UtilSkew)
			for _, ip := range cr.PerInstance {
				faulted := ""
				if ip.Faulted {
					faulted = " [faulted]"
				}
				fmt.Fprintf(rpt, "    inst %d: %6d ops, %5.1f%% throughput, %.1f ms mean latency%s\n",
					ip.Index, ip.Ops, ip.Percent, ip.MeanLatencyMS, faulted)
			}
		}
		if co := res.Compaction; co != nil {
			fmt.Fprintf(rpt, "  compaction:   %s, %d segments flushed (%s), %d merges (%s read, %s written)\n",
				co.Policy, co.Segments, units.Format(co.FlushBytes), co.Merges,
				units.Format(co.MergeReadBytes), units.Format(co.MergeWriteBytes))
			fmt.Fprintf(rpt, "  write amp:    %.2fx, live segments per tier %v\n", co.WriteAmp, co.Live)
		}
	case "aging":
		res, err := core.RunAging(cfg)
		if err != nil {
			fatal("%v", err)
		}
		f := res.Final()
		fmt.Fprintf(rpt, "  churn:        %.1f h simulated, %d operations, %d disk-full conditions\n",
			res.SimMS/3.6e6, res.Ops, res.AllocFails)
		fmt.Fprintf(rpt, "  free space:   %d fragments, largest %d units\n",
			f.FreeFragments, f.LargestFreeUnits)
		fmt.Fprintf(rpt, "  fragmentation: %.2f%% internal, %.2f%% external at %.1f%% utilization\n",
			f.InternalPct, f.ExternalPct, f.Utilization*100)
		fmt.Fprintf(rpt, "  objects:      %d files, %s mean size\n", f.Files, units.Format(int64(f.MeanFileBytes)))
	default:
		fatal("unknown test %q", *testFlag)
	}

	// The run completed; its checkpoint is spent (a killed run never gets
	// here, leaving the file for -resume).
	if ckptMgr != nil {
		ckptMgr.Clear(ckptKey)
	}

	if *metricsFlag != "" {
		if err := cfg.Metrics.WriteFile(*metricsFlag, metricsFmt); err != nil {
			fatal("%v", err)
		}
		if *metricsFlag != "-" {
			fmt.Fprintf(os.Stderr, "rofsim: wrote metrics bundle to %s\n", *metricsFlag)
		}
	}
}

func stability(res core.PerfResult) string {
	if res.Stable {
		return fmt.Sprintf("stabilized after %d windows", res.Windows)
	}
	return "time-capped; overall average"
}

func parseSize(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = units.KB, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = units.MB, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = units.GB, strings.TrimSuffix(s, "G")
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("cannot parse size %q", s)
	}
	return n * mult, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofsim: "+format+"\n", args...)
	os.Exit(1)
}
