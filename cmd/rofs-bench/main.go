// Command rofs-bench runs a pinned benchmark grid over the simulator and
// emits a machine-readable JSON report — the tracked artifact (BENCH_*.json
// at the repository root) that performance PRs regenerate so reviewers see
// events/sec, ns/event, and allocs/event move.
//
// Two layers are measured:
//
//   - the engine microbenchmarks (self-firing event and a 256-deep queue),
//     via testing.Benchmark — the pure event-loop cost with no simulated
//     file system behind it; and
//   - full simulations on the bench scale, one cell per workload × policy
//     × test, timed in-process with allocation counters read around the
//     run.
//
// Cells run sequentially (never in parallel) so wall-clock timings are not
// distorted by scheduler contention; a warm-up cell absorbs one-time costs
// before measurement starts.
//
// Usage:
//
//	rofs-bench -out BENCH_PR2.json          # the full pinned grid
//	rofs-bench -short -out -                # CI smoke subset to stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"testing"
	"time"

	"rofs/internal/alloc/extent"
	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/metrics"
	"rofs/internal/prof"
	"rofs/internal/runner"
	"rofs/internal/sim"
	"rofs/internal/workload"
)

// engineResult is one microbenchmark row.
type engineResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// cellResult is one simulation cell of the grid.
type cellResult struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	Test     string `json:"test"`
	// Instances marks the fleet cells (cluster mode); 0 is a plain run.
	Instances int `json:"instances,omitempty"`
	// Par is the fleet's worker-goroutine count (Cluster.Parallelism);
	// 0 is the serial executor. Results are byte-identical either way —
	// only the wall-clock figures move.
	Par int `json:"par,omitempty"`
	// GOMAXPROCS records the scheduler width in effect for this cell:
	// fleet cells pin it (1 for the serial baseline, all cores for the
	// parallel cells) so speedups are attributable; plain cells inherit
	// the process setting.
	GOMAXPROCS int `json:"gomaxprocs"`

	Events       uint64  `json:"events"`
	SimMS        float64 `json:"sim_ms"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	// AllocsPerEvent and BytesPerEvent count heap activity for the whole
	// run (including setup) divided by events fired, from runtime.MemStats
	// deltas around the run.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`

	// Metric is the cell's simulated result — percent of maximum
	// throughput for perf tests, internal fragmentation percent for the
	// allocation test — carried along as a sanity check that optimization
	// PRs did not change what is being simulated.
	Metric float64 `json:"metric"`
}

// poolResult reports the parallel saturation pass: the timed grid
// resubmitted through an instrumented runner.Pool (each cell twice, so
// the second submission exercises the result cache). It tracks how far
// the pool layer is from the sequential cells' aggregate wall time and
// whether its queue/in-flight accounting saturates the workers.
type poolResult struct {
	Jobs           int     `json:"jobs"`
	Runs           int     `json:"runs"`
	WallSeconds    float64 `json:"wall_seconds"`
	Submitted      int64   `json:"submitted"`
	Simulated      int64   `json:"simulated"`
	Cached         int64   `json:"cached"`
	Failed         int64   `json:"failed"`
	PeakInFlight   int64   `json:"peak_in_flight"`
	PeakQueueDepth int64   `json:"peak_queue_depth"`
}

// reportJSON is the whole artifact.
type reportJSON struct {
	Schema     string         `json:"schema"`
	Scale      string         `json:"scale"`
	Seed       int64          `json:"seed"`
	Short      bool           `json:"short"`
	GoVersion  string         `json:"go_version"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Engine     []engineResult `json:"engine"`
	Cells      []cellResult   `json:"cells"`
	Pool       *poolResult    `json:"pool,omitempty"`
}

func main() {
	var (
		outFlag   = flag.String("out", "BENCH_PR2.json", "output file (- for stdout)")
		shortFlag = flag.Bool("short", false, "run the reduced CI smoke grid")
		seedFlag  = flag.Int64("seed", 42, "simulation seed")
		poolJobs  = flag.Int("pool-jobs", runtime.GOMAXPROCS(0),
			"workers for the parallel pool saturation pass (0 or negative skips it)")

		// Enabling -metrics adds sampling events to each run, so the
		// reported events/sec are not comparable with metrics-off artifacts;
		// use it for inspecting cells, not for the tracked BENCH_*.json.
		metricsFlag    = flag.String("metrics", "", "write one metrics bundle per cell into this directory")
		metricsFmtFlag = flag.String("metrics-format", "json", "bundle encoding: json | csv | prom")
		metricsIntFlag = flag.Float64("metrics-interval", metrics.DefaultIntervalMS, "timeline sampling interval (simulated ms)")

		cpuProfFlag  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfFlag  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		execTraceFlg = flag.String("exectrace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancel the context: the current cell stops at its
	// next operation, already-measured rows stay on stderr, and the process
	// exits nonzero without writing a partial artifact.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProf, err := prof.Start(prof.Flags{CPUProfile: *cpuProfFlag, MemProfile: *memProfFlag, Trace: *execTraceFlg})
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "rofs-bench: %v\n", err)
		}
	}()

	sc := experiments.BenchScale()
	sc.Seed = *seedFlag

	// v2 adds per-cell gomaxprocs/par and the parallel fleet cells; plain
	// cells are unchanged from v1.
	rep := reportJSON{
		Schema:     "rofs-bench/v2",
		Scale:      sc.Name,
		Seed:       sc.Seed,
		Short:      *shortFlag,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	fmt.Fprintf(os.Stderr, "rofs-bench: engine microbenchmarks\n")
	rep.Engine = engineBenchmarks(*shortFlag)
	for _, e := range rep.Engine {
		fmt.Fprintf(os.Stderr, "  %-24s %8.2f ns/op  %3d allocs/op  %4d B/op\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}

	specs, err := grid(sc, *shortFlag)
	if err != nil {
		fatal("%v", err)
	}

	// Warm-up: run the first cell once untimed so lazy one-time costs
	// (page faults, first GC sizing) land outside the measurements.
	if len(specs) > 0 {
		cfg := specs[0].Config()
		cfg.Cancel = ctx.Done()
		if _, err := core.Run(cfg, specs[0].Kind); err != nil {
			if ctx.Err() != nil {
				fatal("interrupted (%v)", ctx.Err())
			}
			fatal("warm-up %s: %v", specs[0].Label(), err)
		}
	}

	metricsFmt, err := metrics.ParseFormat(*metricsFmtFlag)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Fprintf(os.Stderr, "rofs-bench: %d simulation cells (scale=%s, seed=%d)\n",
		len(specs), sc.Name, sc.Seed)
	for _, sp := range specs {
		var reg *metrics.Registry
		if *metricsFlag != "" {
			reg = metrics.New(*metricsIntFlag)
		}
		// Fleet cells pin GOMAXPROCS to 1: the serial executor is the
		// baseline the parallel pass below is compared against, and a
		// single P keeps its wall clock free of GC assist jitter from
		// idle Ps.
		prevProcs := 0
		if sp.Cluster.Enabled() {
			prevProcs = runtime.GOMAXPROCS(1)
		}
		cell, err := measure(sp, reg, ctx.Done())
		if prevProcs > 0 {
			runtime.GOMAXPROCS(prevProcs)
		}
		if err != nil {
			if ctx.Err() != nil {
				fatal("interrupted during %s (%v); measured cells above", sp.Label(), ctx.Err())
			}
			fatal("%s: %v", sp.Label(), err)
		}
		if *metricsFlag != "" {
			if _, err := runner.SaveMetrics(*metricsFlag, metricsFmt, sp.Label(), reg); err != nil {
				fatal("%v", err)
			}
		}
		rep.Cells = append(rep.Cells, cell)
		fmt.Fprintf(os.Stderr, "  %-28s %9d events  %8.0f events/sec  %7.1f ns/event  %6.2f allocs/event\n",
			sp.Label(), cell.Events, cell.EventsPerSec, cell.NsPerEvent, cell.AllocsPerEvent)
	}

	if !*shortFlag {
		// Parallel fleet pass: the cluster cells again with the fleet's
		// engines fanned across worker goroutines and the scheduler opened
		// to every core. The simulated results are byte-identical to the
		// serial cells above (the executor's contract); only events/sec
		// moves, and the serial-vs-parallel pairing in the artifact is what
		// makes the speedup reviewable.
		fleet, err := parallelFleetSpecs(sc)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rofs-bench: %d parallel fleet cells (gomaxprocs=%d)\n",
			len(fleet), runtime.NumCPU())
		prevProcs := runtime.GOMAXPROCS(runtime.NumCPU())
		for _, sp := range fleet {
			cell, err := measure(sp, nil, ctx.Done())
			if err != nil {
				if ctx.Err() != nil {
					fatal("interrupted during %s (%v); measured cells above", sp.Label(), ctx.Err())
				}
				fatal("%s: %v", sp.Label(), err)
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(os.Stderr, "  %-28s %9d events  %8.0f events/sec  %7.1f ns/event  %6.2f allocs/event\n",
				sp.Label(), cell.Events, cell.EventsPerSec, cell.NsPerEvent, cell.AllocsPerEvent)
		}
		runtime.GOMAXPROCS(prevProcs)
	}

	if *poolJobs > 0 {
		pr, err := poolPass(ctx, specs, *poolJobs)
		if err != nil {
			if ctx.Err() != nil {
				fatal("interrupted during pool pass (%v)", ctx.Err())
			}
			fatal("pool pass: %v", err)
		}
		rep.Pool = &pr
		fmt.Fprintf(os.Stderr,
			"rofs-bench: pool pass: %d runs in %.2fs on %d workers (%d simulated, %d cached, %d failed), peak in-flight %d, peak queue %d\n",
			pr.Runs, pr.WallSeconds, pr.Jobs, pr.Simulated, pr.Cached, pr.Failed,
			pr.PeakInFlight, pr.PeakQueueDepth)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	buf = append(buf, '\n')
	if *outFlag == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outFlag, buf, 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "rofs-bench: wrote %s\n", *outFlag)
}

// grid declares the pinned cells. The full grid crosses the three
// workloads with four allocation policies on the application and
// sequential tests; -short keeps one application cell per workload.
func grid(sc experiments.Scale, short bool) ([]runner.Spec, error) {
	policies := []core.PolicySpec{
		core.Buddy(),
		core.RBuddy(5, 1, true),
	}
	tests := []core.TestKind{core.Application, core.Sequential}
	workloads := []string{"TS", "TP", "SC"}
	if short {
		policies = policies[:1]
		tests = tests[:1]
	}

	var specs []runner.Spec
	for _, wlName := range workloads {
		wl, err := sc.Workload(wlName)
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			for _, k := range tests {
				specs = append(specs, sc.Spec(p, wl, k))
			}
		}
		if !short {
			// The extent policy's size ranges are workload-specific.
			ranges, err := sc.ExtentRanges(wlName, 3)
			if err != nil {
				return nil, err
			}
			specs = append(specs, sc.Spec(core.Extent(extent.FirstFit, ranges), wl, core.Application))
			// The allocation test exercises the policy layer without the
			// disk system — a different hot loop worth tracking.
			specs = append(specs, sc.Spec(core.RBuddy(5, 1, true), wl, core.Allocation))
		}
	}
	if !short {
		// Cluster cells: the fleet dispatch path at N=1/4/16 under open-loop
		// TP load proportional to the fleet, so per-instance pressure is
		// constant and the numbers isolate the Deployment's overhead.
		for _, n := range fleetSizes {
			sp, err := fleetSpec(sc, n, 0)
			if err != nil {
				return nil, err
			}
			specs = append(specs, sp)
		}
	}
	return specs, nil
}

// fleetSizes is the cluster grid: one instance (the delegation path),
// a small fleet, and one wide enough that parallel execution has
// something to fan out.
var fleetSizes = []int{1, 4, 16}

// fleetSpec builds one cluster cell: N instances under open-loop TP load
// proportional to the fleet, with par worker goroutines (0: serial).
func fleetSpec(sc experiments.Scale, n, par int) (runner.Spec, error) {
	wl, err := sc.Workload("TP")
	if err != nil {
		return runner.Spec{}, err
	}
	wl.Arrivals = &workload.Arrivals{RatePerSec: 100 * float64(n)}
	sp := sc.Spec(core.RBuddy(5, 1, true), wl, core.Application)
	sp.Cluster = cluster.Config{Instances: n, Parallelism: par}
	if par > 0 {
		sp.Name = fmt.Sprintf("cluster-n%d-par%d/TP/app", n, par)
	} else {
		sp.Name = fmt.Sprintf("cluster-n%d/TP/app", n)
	}
	return sp, nil
}

// parallelFleetSpecs returns the parallel counterparts of the grid's
// cluster cells: the same configurations (same Spec.Key, byte-identical
// results) with one worker per instance.
func parallelFleetSpecs(sc experiments.Scale) ([]runner.Spec, error) {
	var specs []runner.Spec
	for _, n := range fleetSizes {
		sp, err := fleetSpec(sc, n, n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// poolPass resubmits the timed grid through an instrumented runner.Pool —
// every cell twice, so the duplicate hits the result cache — and snapshots
// the pool's saturation stats. This is the same pool layer rofs-server
// serves from, measured under the same cells the sequential pass timed.
func poolPass(ctx context.Context, specs []runner.Spec, jobs int) (poolResult, error) {
	doubled := make([]runner.Spec, 0, 2*len(specs))
	doubled = append(doubled, specs...)
	doubled = append(doubled, specs...)
	pool := runner.New(jobs)
	start := time.Now()
	if _, err := pool.Run(ctx, doubled); err != nil {
		return poolResult{}, err
	}
	st := pool.Stats()
	return poolResult{
		Jobs:           jobs,
		Runs:           len(doubled),
		WallSeconds:    time.Since(start).Seconds(),
		Submitted:      st.Submitted,
		Simulated:      st.Simulated,
		Cached:         st.Cached,
		Failed:         st.Failed,
		PeakInFlight:   st.PeakInFlight,
		PeakQueueDepth: st.PeakQueueDepth,
	}, nil
}

// measure runs one cell sequentially, in-process, with allocation
// counters read around the run. A non-nil reg attaches a metrics registry
// to the run (which adds its sampling events to the measured counts).
// cancel aborts the run between operations (the Ctrl-C path).
func measure(sp runner.Spec, reg *metrics.Registry, cancel <-chan struct{}) (cellResult, error) {
	cfg := sp.Config()
	cfg.Metrics = reg
	cfg.Cancel = cancel

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var out core.Outcome
	var err error
	if sp.Cluster.Enabled() {
		out, err = cluster.Run(cfg, sp.Cluster, sp.Kind)
	} else {
		out, err = core.Run(cfg, sp.Kind)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return cellResult{}, err
	}

	events := out.Stats.Events
	cell := cellResult{
		Workload:    sp.Workload.Name,
		Policy:      sp.Policy.Name(),
		Test:        sp.Kind.String(),
		Instances:   sp.Cluster.Instances,
		Par:         sp.Cluster.Parallelism,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Events:      events,
		SimMS:       out.Stats.SimMS,
		WallSeconds: wall.Seconds(),
	}
	if events > 0 {
		cell.EventsPerSec = float64(events) / wall.Seconds()
		cell.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		cell.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		cell.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	switch sp.Kind {
	case core.Allocation:
		cell.Metric = out.Frag.InternalPct
	default:
		cell.Metric = out.Perf.Percent
	}
	return cell, nil
}

// engineBenchmarks measures the bare event loop via testing.Benchmark —
// the same shapes as the sim package's benchmarks, reproduced here so the
// JSON artifact is self-contained.
func engineBenchmarks(short bool) []engineResult {
	convert := func(name string, r testing.BenchmarkResult) engineResult {
		return engineResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	out := []engineResult{
		convert("engine/self-fire", testing.Benchmark(func(b *testing.B) {
			var e sim.Engine
			remaining := b.N
			var fire sim.Handler
			fire = func(float64) {
				remaining--
				if remaining > 0 {
					e.After(1, fire)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			e.At(0, fire)
			e.Run(math.Inf(1))
		})),
	}
	if !short {
		out = append(out, convert("engine/depth-256", testing.Benchmark(func(b *testing.B) {
			var e sim.Engine
			const depth = 256
			remaining := b.N
			rng := sim.NewRNG(1)
			var fire sim.Handler
			fire = func(float64) {
				remaining--
				if remaining > 0 {
					e.After(rng.Exp(10), fire)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < depth; i++ {
				e.At(rng.Exp(10), fire)
			}
			e.Run(math.Inf(1))
		})))
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-bench: "+format+"\n", args...)
	os.Exit(1)
}
