// Command rofs-client drives a rofs-server: submit simulation runs, wait
// for or stream their results, and render them as tables — so sweeps can
// be pointed at a remote server instead of simulating locally.
//
// Usage:
//
//	rofs-client [command] [flags]
//
// Commands:
//
//	run      submit a run and wait for its result (default)
//	submit   submit a run, print its id, return immediately
//	wait     -id run-000001: follow a run to completion, print the result
//	stream   -id run-000001: print the raw SSE event feed
//	status   -id run-000001: one status snapshot
//	cancel   -id run-000001: stop a run
//	list     every run the server remembers
//
// Examples:
//
//	rofs-client run -policy buddy -workload TS -test app
//	rofs-client run -policy fixed -block 4K -workload TS -test app -json
//	rofs-client submit -policy rbuddy -sizes 5 -grow 1 -workload SC -test seq
//	rofs-client wait -id run-000001 -metrics bundle.json
//
// The server address comes from -server or the ROFS_SERVER environment
// variable (default http://127.0.0.1:8080). Error messages carry the
// response's X-Rofs-Trace-Id, the key into the server's access log;
// -retries N resubmits 503-rejected runs, honoring Retry-After.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rofs/internal/cluster"
	"rofs/internal/fault"
	"rofs/internal/report"
	"rofs/internal/service"
	"rofs/internal/units"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}

	fs := flag.NewFlagSet("rofs-client "+cmd, flag.ExitOnError)
	var (
		serverFlag  = fs.String("server", envOr("ROFS_SERVER", "http://127.0.0.1:8080"), "rofs-server base URL")
		idFlag      = fs.String("id", "", "run id (wait, stream, status, cancel)")
		jsonFlag    = fs.Bool("json", false, "print raw JSON instead of tables")
		metricsOut  = fs.String("metrics", "", "write the run's rofs-metrics/v1 bundle to this file (- for stdout)")
		retriesFlag = fs.Int("retries", 0, "run/submit: resubmit up to N times on 503, honoring Retry-After")

		policyFlag   = fs.String("policy", "rbuddy", "buddy | rbuddy | extent | fixed")
		workloadFlag = fs.String("workload", "TS", "TS | TP | SC")
		testFlag     = fs.String("test", "alloc", "alloc | app | seq | aging")
		scaleFlag    = fs.String("scale", "bench", "full | bench")
		seedFlag     = fs.Int64("seed", 42, "simulation seed")
		nameFlag     = fs.String("name", "", "presentation label for the run")

		sizesFlag = fs.Int("sizes", 5, "rbuddy: number of block sizes (2-5)")
		growFlag  = fs.Float64("grow", 1, "rbuddy: grow-policy multiplier")
		clustFlag = fs.Bool("clustered", true, "rbuddy: use 32M bookkeeping regions")

		fitFlag    = fs.String("fit", "first", "extent: first | best")
		rangesFlag = fs.Int("ranges", 3, "extent: number of extent-size ranges (1-5)")

		blockFlag = fs.String("block", "4K", "fixed: block size (4K or 16K)")

		stableFlag = fs.Int("stable-windows", 0,
			"consecutive in-tolerance windows before a throughput run stops early (0: server default)")

		disksFlag   = fs.Int("disks", 0, "override number of drives")
		layoutFlag  = fs.String("layout", "striped", "striped | mirrored | raid5 | parity")
		stripeFlag  = fs.String("stripe", "", "override stripe unit, e.g. 24K")
		maxSimFlag  = fs.Float64("max-sim", 0, "override simulated-time cap (ms)")
		timeoutFlag = fs.Duration("timeout", 0, "server-side wall-time cap for the run (e.g. 2m)")

		ckptEveryFlag = fs.Float64("ckpt-every", 0,
			"arm server-side checkpoint/resume at this boundary interval (simulated ms; needs a server with -ckpt-dir)")

		// fault-scenario knobs, forwarded as the request's faults object
		faultFlags = fault.AddFlags(fs)

		// cluster + open-loop knobs, forwarded as the request's cluster and
		// arrivals objects
		clusterFlags = cluster.AddFlags(fs)
	)
	fs.Parse(args)

	client := &service.Client{BaseURL: *serverFlag}
	// Ctrl-C cancels the in-flight HTTP call; for ?wait=1 submissions the
	// server cancels the simulation too (disconnect propagates to
	// Config.Cancel).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	req := service.RunRequest{
		Policy:    *policyFlag,
		Workload:  *workloadFlag,
		Test:      *testFlag,
		Scale:     *scaleFlag,
		Seed:      *seedFlag,
		Name:      *nameFlag,
		Sizes:     *sizesFlag,
		Grow:      *growFlag,
		Clustered: clustFlag,
		Fit:       *fitFlag,
		Ranges:    *rangesFlag,
		Disks:     *disksFlag,
		Layout:    *layoutFlag,
		MaxSimMS:  *maxSimFlag,

		StableWindows:     *stableFlag,
		CheckpointEveryMS: *ckptEveryFlag,
	}
	if *policyFlag == "fixed" {
		n, err := parseSize(*blockFlag)
		if err != nil {
			fatal("bad block size: %v", err)
		}
		req.BlockBytes = n
	}
	if *stripeFlag != "" {
		n, err := parseSize(*stripeFlag)
		if err != nil {
			fatal("bad stripe unit: %v", err)
		}
		req.StripeBytes = n
	}
	if *timeoutFlag > 0 {
		req.TimeoutMS = float64(*timeoutFlag) / float64(time.Millisecond)
	}
	if faults := faultFlags.Scenario(); faults.Enabled() || faults.PreFail {
		if err := faults.Validate(); err != nil {
			fatal("%v", err)
		}
		req.Faults = &faults
	}
	// -arrival-trace is loaded client-side and sent inline: the server
	// refuses trace_file references (it will not read paths local to the
	// client machine).
	if a, err := clusterFlags.Arrivals(); err != nil {
		fatal("%v", err)
	} else {
		req.Arrivals = a
	}
	req.Compaction = clusterFlags.Compaction()
	if cc := clusterFlags.Config(); cc.Enabled() {
		if err := cc.Validate(); err != nil {
			fatal("%v", err)
		}
		req.Cluster = &cc
	}

	switch cmd {
	case "run":
		sub, err := client.SubmitRetry(ctx, req, *retriesFlag)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rofs-client: submitted %s; waiting\n", sub.ID)
		st, err := client.Wait(ctx, sub.ID)
		if err != nil {
			fatal("%v", err)
		}
		finish(st, *jsonFlag, *metricsOut)
	case "submit":
		sub, err := client.SubmitRetry(ctx, req, *retriesFlag)
		if err != nil {
			fatal("%v", err)
		}
		if *jsonFlag {
			printJSON(sub)
			return
		}
		fmt.Println(sub.ID)
	case "wait":
		st, err := client.Wait(ctx, need(*idFlag))
		if err != nil {
			fatal("%v", err)
		}
		finish(st, *jsonFlag, *metricsOut)
	case "stream":
		err := client.Stream(ctx, need(*idFlag), func(ev service.Event) bool {
			fmt.Printf("%s\t%s\n", ev.Name, ev.Data)
			return true
		})
		if err != nil {
			fatal("%v", err)
		}
	case "status":
		st, err := client.Status(ctx, need(*idFlag))
		if err != nil {
			fatal("%v", err)
		}
		finish(st, *jsonFlag, *metricsOut)
	case "cancel":
		st, err := client.Cancel(ctx, need(*idFlag))
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rofs-client: %s -> %s\n", st.ID, st.State)
	case "list":
		runs, err := client.List(ctx)
		if err != nil {
			fatal("%v", err)
		}
		if *jsonFlag {
			printJSON(runs)
			return
		}
		t := report.NewTable("", "ID", "State", "Label", "Detail")
		for _, st := range runs {
			t.AddRow(st.ID, st.State, st.Label, detail(st))
		}
		t.Render(os.Stdout)
	default:
		fatal("unknown command %q (want run, submit, wait, stream, status, cancel, or list)", cmd)
	}
}

// finish renders a terminal (or snapshot) status and exits nonzero for
// failed and canceled runs so scripts can branch on the outcome.
func finish(st service.RunStatus, asJSON bool, metricsOut string) {
	if metricsOut != "" && st.Result != nil && len(st.Result.Metrics) > 0 {
		if err := writeBundle(metricsOut, st.Result.Metrics); err != nil {
			fatal("%v", err)
		}
		if metricsOut != "-" {
			fmt.Fprintf(os.Stderr, "rofs-client: wrote metrics bundle to %s\n", metricsOut)
		}
	}
	if asJSON {
		printJSON(st)
	} else {
		renderStatus(st)
	}
	switch st.State {
	case service.StateDone, service.StateQueued, service.StateRunning:
	default:
		os.Exit(1)
	}
}

// renderStatus prints the human view: a table per result kind.
func renderStatus(st service.RunStatus) {
	switch {
	case st.Result != nil && st.Result.Frag != nil:
		f := st.Result.Frag
		t := report.NewTable(fmt.Sprintf("%s  %s  (%s)", st.ID, st.Label, note(st)),
			"Internal%", "External%", "Filled", "Ops", "ExtentsPerFile")
		t.AddRow(fmt.Sprintf("%.2f", f.InternalPct), fmt.Sprintf("%.2f", f.ExternalPct),
			f.Filled, f.Ops, fmt.Sprintf("%.1f", f.ExtentsPerFile))
		t.Render(os.Stdout)
	case st.Result != nil && st.Result.Perf != nil:
		p := st.Result.Perf
		t := report.NewTable(fmt.Sprintf("%s  %s  (%s)", st.ID, st.Label, note(st)),
			"Throughput%", "Stable", "MeanLatMS", "P95LatMS", "Ops", "Moved")
		t.AddRow(fmt.Sprintf("%.6f", p.Percent), p.Stable, fmt.Sprintf("%.2f", p.MeanLatencyMS),
			fmt.Sprintf("%.0f", p.P95LatencyMS), p.Ops, units.Format(p.Bytes))
		t.Render(os.Stdout)
		if fr := p.Faults; fr != nil {
			ft := report.NewTable("Fault report",
				"DriveFails", "Transient", "Retries", "Permanent", "Degraded (s)", "Rebuilt")
			rebuilt := "-"
			switch {
			case fr.Rebuilds > 0:
				rebuilt = units.Format(fr.RebuildBytes)
			case fr.DegradedAtEnd:
				rebuilt = "incomplete"
			}
			ft.AddRow(fr.DriveFailures, fr.TransientErrors, fr.Retries, fr.PermanentErrors,
				fmt.Sprintf("%.1f", fr.DegradedMS/1000), rebuilt)
			ft.Render(os.Stdout)
		}
		if cr := p.Cluster; cr != nil {
			admit := cr.Admission
			if admit == "" {
				admit = "none"
			}
			ct := report.NewTable(
				fmt.Sprintf("Cluster report  (%d instances, routing=%s admission=%s, skew %.3f)",
					cr.Instances, cr.Routing, admit, cr.UtilSkew),
				"Inst", "Routed", "Ops", "Throughput%", "MeanLatMS", "Util", "Faulted")
			for _, ip := range cr.PerInstance {
				ct.AddRow(ip.Index, ip.Routed, ip.Ops, fmt.Sprintf("%.2f", ip.Percent),
					fmt.Sprintf("%.2f", ip.MeanLatencyMS), fmt.Sprintf("%.3f", ip.Utilization), ip.Faulted)
			}
			ct.Render(os.Stdout)
			if cr.Arrivals > 0 {
				fmt.Printf("admission: %d arrivals, %d admitted, %d rejected (%.1f%%)\n",
					cr.Arrivals, cr.Admitted, cr.Rejected, cr.RejectPct)
			}
		}
		if co := p.Compaction; co != nil {
			cot := report.NewTable(fmt.Sprintf("Compaction report (%s)", co.Policy),
				"Segments", "Merges", "Flushed", "MergeRead", "MergeWritten", "WriteAmp", "Live")
			cot.AddRow(co.Segments, co.Merges, units.Format(co.FlushBytes),
				units.Format(co.MergeReadBytes), units.Format(co.MergeWriteBytes),
				fmt.Sprintf("%.2f", co.WriteAmp), fmt.Sprintf("%v", co.Live))
			cot.Render(os.Stdout)
		}
	case st.Result != nil && st.Result.Aging != nil:
		a := st.Result.Aging
		t := report.NewTable(fmt.Sprintf("%s  %s  (%s)", st.ID, st.Label, note(st)),
			"Sim time", "Util%", "Ext%", "FreeFrags", "LargestFree", "Files", "Ops")
		f := a.Final()
		t.AddRow(fmt.Sprintf("%.1fh", a.SimMS/3.6e6), fmt.Sprintf("%.1f", f.Utilization*100),
			fmt.Sprintf("%.2f", f.ExternalPct), f.FreeFragments, f.LargestFreeUnits,
			f.Files, a.Ops)
		t.Render(os.Stdout)
	case st.Error != "":
		fmt.Printf("%s  %s  state=%s: %s\n", st.ID, st.Label, st.State, st.Error)
	default:
		pos := ""
		if st.Position > 0 {
			pos = fmt.Sprintf(" (queue position %d)", st.Position)
		}
		fmt.Printf("%s  %s  state=%s%s\n", st.ID, st.Label, st.State, pos)
	}
}

// note summarizes how the run was served for the table title.
func note(st service.RunStatus) string {
	if st.Result == nil {
		return st.State
	}
	how := st.Result.Disposition
	if how == "" {
		// Older servers send no disposition; reconstruct the coarse view.
		how = "simulated"
		if st.Result.Cached {
			how = "cached"
		}
		if st.Result.DiskHit {
			how = "disk-hit"
		}
	}
	return fmt.Sprintf("%s in %.2fs, %s", how, st.Result.WallSeconds, st.State)
}

// detail is the list view's last column.
func detail(st service.RunStatus) string {
	switch {
	case st.Result != nil && st.Result.Perf != nil:
		return fmt.Sprintf("%.2f%% of max", st.Result.Perf.Percent)
	case st.Result != nil && st.Result.Frag != nil:
		return fmt.Sprintf("int %.2f%% / ext %.2f%%", st.Result.Frag.InternalPct, st.Result.Frag.ExternalPct)
	case st.Result != nil && st.Result.Aging != nil:
		f := st.Result.Aging.Final()
		return fmt.Sprintf("%d free frags after %.1fh", f.FreeFragments, st.Result.Aging.SimMS/3.6e6)
	case st.Error != "":
		return st.Error
	case st.Position > 0:
		return fmt.Sprintf("queue position %d", st.Position)
	default:
		return ""
	}
}

func writeBundle(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func need(id string) string {
	if id == "" {
		fatal("this command needs -id")
	}
	return id
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func parseSize(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = units.KB, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = units.MB, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = units.GB, strings.TrimSuffix(s, "G")
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("cannot parse size %q", s)
	}
	return n * mult, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rofs-client: "+format+"\n", args...)
	os.Exit(1)
}
